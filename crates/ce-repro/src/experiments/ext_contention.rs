//! Extension experiment: saturation of manually-provisioned storage.
//!
//! Table I's "Manual" scaling column means a fixed-size ElastiCache node
//! or parameter-server VM: its aggregate bandwidth is shared by every
//! concurrent worker. The default catalog (like the paper's model)
//! ignores this; the extension provisions a single node of exactly the
//! nominal per-connection bandwidth and shows where the n-way share
//! starts to dominate the epoch — the regime where a real deployment
//! must scale the storage node together with the function count.

use crate::report::Table;
use ce_models::{Allocation, Environment, EpochTimeModel, Workload};
use ce_storage::{StorageCatalog, StorageKind};
use serde_json::{json, Value};

/// Runs the contention sweep.
pub fn run(_quick: bool) -> Value {
    let w = Workload::mobilenet_cifar10();
    let base_env = Environment::aws_default();

    // Contended environment: one node per manual-scaling service, total
    // capacity equal to the nominal per-connection rate.
    let mut specs = Vec::new();
    for spec in base_env.storage.services() {
        let mut s = spec.clone();
        if s.kind == StorageKind::ElastiCache || s.kind == StorageKind::VmPs {
            let capacity = s.bandwidth_mbps;
            s = s.with_aggregate_capacity(capacity);
        }
        specs.push(s);
    }
    let contended_env = Environment {
        storage: StorageCatalog::from_specs(specs),
        ..base_env.clone()
    };

    let mut cells = Vec::new();
    println!(
        "Extension — single-node storage saturation ({})\n",
        w.label()
    );
    for storage in [StorageKind::ElastiCache, StorageKind::VmPs] {
        let mut table = Table::new(["n", "uncontended epoch", "single-node epoch", "slowdown"]);
        for n in [10u32, 50, 100, 200] {
            let alloc = Allocation::new(n, 1769, storage);
            let free = EpochTimeModel::new(&base_env)
                .epoch_time(&w, &alloc)
                .total();
            let tight = EpochTimeModel::new(&contended_env)
                .epoch_time(&w, &alloc)
                .total();
            table.row([
                n.to_string(),
                format!("{free:.1}s"),
                format!("{tight:.1}s"),
                format!("{:.2}x", tight / free),
            ]);
            cells.push(json!({
                "storage": storage.to_string(),
                "n": n,
                "uncontended_s": free,
                "single_node_s": tight,
                "slowdown": tight / free,
            }));
        }
        println!("{storage}:");
        table.print();
        println!();
    }
    json!({ "ext_contention": cells })
}

#[cfg(test)]
mod tests {
    #[test]
    fn saturation_grows_with_workers() {
        let v = super::run(true);
        let cells = v["ext_contention"].as_array().unwrap();
        for storage in ["ElastiCache", "VM-PS"] {
            let slowdown = |n: u64| {
                cells
                    .iter()
                    .find(|c| c["storage"] == storage && c["n"].as_u64() == Some(n))
                    .and_then(|c| c["slowdown"].as_f64())
                    .unwrap()
            };
            assert!(slowdown(10) >= 1.0);
            assert!(
                slowdown(200) > slowdown(10),
                "{storage}: no growth in saturation"
            );
        }
    }
}
