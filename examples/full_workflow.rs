//! The complete serverless ML workflow of the paper's Fig. 1: a
//! hyperparameter-tuning bracket finds the best configuration, then
//! model training takes the winner to its target loss — one budget
//! across both phases, compared across scheduling methods.
//!
//! ```sh
//! cargo run --release --example full_workflow
//! ```

use ce_scaling::models::Workload;
use ce_scaling::pareto::ParetoProfiler;
use ce_scaling::prelude::*;
use ce_scaling::tuning::PartitionPlan;
use ce_scaling::workflow::{Method, PipelineJob};

fn main() {
    let workload = Workload::mobilenet_cifar10();
    let sha = ShaSpec::new(128, 2, 2);

    // A budget sized for both phases: tuning floor plus a comfortably
    // funded training run.
    let env = Environment::aws_default();
    let profile = ParetoProfiler::new(&env).profile_workload(&workload);
    let tuning_floor = PartitionPlan::uniform(*profile.cheapest().unwrap(), sha).cost();
    let boundary = profile.boundary();
    let mid = boundary[boundary.len() / 2];
    let budget = tuning_floor * 2.0 + mid.cost_usd() * 42.0 * 2.0;
    // Give tuning a share that covers twice its cheapest plan.
    let share = (tuning_floor * 2.0 / budget).clamp(0.1, 0.9);

    println!(
        "workflow: tune {} ({} trials, {} stages) then train the winner; budget ${budget:.2}\n",
        workload.label(),
        sha.initial_trials,
        sha.num_stages()
    );
    println!(
        "{:12} {:>11} {:>10} {:>12} {:>12} {:>9}",
        "method", "tuning JCT", "train JCT", "tuning cost", "train cost", "violated"
    );
    for method in [Method::CeScaling, Method::LambdaMl, Method::Siren] {
        let job = PipelineJob::new(workload.clone(), sha, Constraint::Budget(budget))
            .with_tuning_share(share)
            .with_seed(17);
        match job.run(method) {
            Ok(r) => println!(
                "{:12} {:>10.0}s {:>9.0}s {:>11.2}$ {:>11.2}$ {:>9}",
                method.label(),
                r.tuning.jct_s,
                r.training.jct_s,
                r.tuning.cost_usd,
                r.training.cost_usd,
                r.violated
            ),
            Err(e) => println!("{:12} failed: {e}", method.label()),
        }
    }
    println!(
        "\nUnspent tuning budget rolls into training; the winner's\n\
         configuration quality determines the training run's convergence."
    );
}
