//! Extension experiment: recovery policies under worker failures.
//!
//! Serverless workers are preemptible in practice (spot capacity,
//! runtime crashes, throttling); the paper's evaluation assumes failure-
//! free runs. This extension injects deterministic crash chaos via
//! `ce-chaos` and sweeps the failure rate against the three recovery
//! policies in `ce-workflow`:
//!
//! * **retry** — roll back to epoch 0 and rerun (the naive baseline);
//! * **checkpoint** — snapshot to durable storage every k epochs, pay
//!   the transfer time and request dollars, resume from the snapshot;
//! * **replan** — resume from the snapshot and feed the fault damage
//!   into the adaptive scheduler as cost/time pressure.
//!
//! At high failure rates checkpointing buys strictly lower JCT than
//! naive retry, at the price of visible `recovery.*` storage dollars —
//! the classic fault-tolerance trade the paper leaves unexplored.

use crate::context;
use crate::report::{secs, usd, Table};
use ce_chaos::FaultSchedule;
use ce_models::{Environment, Workload};
use ce_obs::Registry;
use ce_workflow::{Constraint, Method, RecoveryPolicy, TrainingExecution, TrainingJob};
use serde_json::{json, Value};

/// Snapshot cadence for the checkpointing policies.
const CHECKPOINT_EVERY: u32 = 5;

/// Runs one job to convergence (or the epoch cap) under a crash rate and
/// recovery policy, returning `(jct_s, cost_usd, checkpoint_usd, epochs)`.
fn run_cell(w: &Workload, budget: f64, seed: u64, rate: f64, policy: RecoveryPolicy) -> Value {
    let obs = Registry::new();
    let mut job = TrainingJob::new(w.clone(), Constraint::Budget(budget))
        .with_seed(seed)
        .with_recovery(policy)
        .with_obs(&obs);
    if rate > 0.0 {
        let spec = format!("crash:{rate}@0..inf");
        job = job.with_chaos(FaultSchedule::parse(&spec).expect("valid spec"));
    }
    if policy.uses_checkpoints() {
        job = job.with_checkpoint_every(CHECKPOINT_EVERY);
    }
    let mut exec = match TrainingExecution::start(job, Method::CeScaling) {
        Ok(e) => e,
        Err(e) => return json!({ "error": e.to_string() }),
    };
    while !exec.is_done() {
        if let Err(e) = exec.step_epoch() {
            return json!({ "error": e.to_string() });
        }
    }
    let r = exec.report();
    json!({
        "jct_s": r.jct_s,
        "cost_usd": r.cost_usd,
        "storage_usd": r.storage_cost_usd,
        "checkpoint_usd": obs.gauge_value("recovery.checkpoint_usd"),
        "checkpoints": obs.counter_value("recovery.checkpoints"),
        "retries": obs.counter_value("recovery.retries"),
        "lost_epochs": obs.counter_value("recovery.lost_epochs"),
        "epochs": r.epochs,
    })
}

/// Runs the failure-rate × recovery-policy sweep.
pub fn run(quick: bool) -> Value {
    let env = Environment::aws_default();
    let w = Workload::mobilenet_cifar10();
    // A loose budget: chaotic retry runs burn multiples of the clean
    // cost, and we want the JCT comparison, not budget-feasibility.
    let budget = context::training_budget(&env, &w) * 8.0;
    let seeds = context::seeds(quick);
    let rates = [0.0, 0.05, 0.1, 0.2];

    let mut cells = Vec::new();
    println!(
        "Extension — recovery policies under worker crashes ({}, budget {}, checkpoint every {} epochs)\n",
        w.label(),
        usd(budget),
        CHECKPOINT_EVERY
    );
    let mut table = Table::new([
        "crash rate",
        "policy",
        "JCT",
        "cost",
        "ckpt $",
        "epochs lost",
        "runs",
    ]);
    for &rate in &rates {
        for &policy in &RecoveryPolicy::ALL {
            let mut jct = 0.0;
            let mut cost = 0.0;
            let mut ckpt_usd = 0.0;
            let mut lost = 0.0;
            let mut runs = 0u32;
            for &seed in &seeds {
                let cell = run_cell(&w, budget, seed, rate, policy);
                if cell.get("error").is_some() {
                    continue;
                }
                jct += cell["jct_s"].as_f64().unwrap();
                cost += cell["cost_usd"].as_f64().unwrap();
                ckpt_usd += cell["checkpoint_usd"].as_f64().unwrap();
                lost += cell["lost_epochs"].as_u64().unwrap() as f64;
                runs += 1;
            }
            let n = f64::from(runs.max(1));
            table.row([
                format!("{:.0}%", rate * 100.0),
                policy.label().to_string(),
                secs(jct / n),
                usd(cost / n),
                format!("{:.4}", ckpt_usd / n),
                format!("{:.1}", lost / n),
                runs.to_string(),
            ]);
            cells.push(json!({
                "failure_rate": rate,
                "policy": policy.label(),
                "jct_s": jct / n,
                "cost_usd": cost / n,
                "checkpoint_usd": ckpt_usd / n,
                "lost_epochs": lost / n,
                "runs": runs,
            }));
        }
    }
    table.print();
    println!(
        "\nNaive retry rolls chaotic runs back to epoch 0, so its JCT blows\n\
         up with the crash rate; checkpoint-resume bounds the loss to the\n\
         snapshot cadence and wins on JCT while paying visible storage\n\
         dollars for the snapshots."
    );
    json!({ "ext_failures": cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(cells: &[Value], rate: f64, policy: &str, key: &str) -> f64 {
        cells
            .iter()
            .find(|c| c["failure_rate"] == rate && c["policy"] == policy)
            .and_then(|c| c[key].as_f64())
            .unwrap()
    }

    #[test]
    fn checkpointing_beats_naive_retry_at_high_crash_rates() {
        let v = super::run(true);
        let cells = v["ext_failures"].as_array().unwrap();
        // Every cell completed all its runs.
        for c in cells {
            assert!(c["runs"].as_u64().unwrap() >= 2, "cell lost runs: {c}");
        }
        // Crashes cost wall time regardless of policy.
        assert!(mean(cells, 0.2, "retry", "jct_s") > mean(cells, 0.0, "retry", "jct_s"));
        // At a 20% crash rate checkpoint-resume strictly beats naive
        // retry on mean JCT...
        assert!(
            mean(cells, 0.2, "checkpoint", "jct_s") < mean(cells, 0.2, "retry", "jct_s"),
            "checkpoint-resume must beat naive retry on JCT at 20% crashes"
        );
        // ...while paying for snapshots retry never takes.
        assert!(mean(cells, 0.2, "checkpoint", "checkpoint_usd") > 0.0);
        assert_eq!(mean(cells, 0.2, "retry", "checkpoint_usd"), 0.0);
        // Checkpointing bounds the rollback loss below naive retry's.
        assert!(
            mean(cells, 0.2, "checkpoint", "lost_epochs")
                < mean(cells, 0.2, "retry", "lost_epochs")
        );
    }
}
