//! Event-driven execution of one SHA tuning stage.
//!
//! A stage runs `q` concurrent trials, each a training job of `n`
//! functions for `r` epochs, under the platform concurrency quota. The
//! plan-level model in `ce-tuning` approximates this with rigid *waves*
//! (`⌈q / ⌊C/n⌋⌉` rounds); this executor schedules trials greedily on the
//! event queue — a new trial starts the moment capacity frees — giving a
//! slightly tighter wall clock and an exact peak-concurrency check. The
//! tests pin the analytic wave bound from above and the perfect-packing
//! bound from below.

use crate::platform::PlatformConfig;
use ce_models::{Allocation, CostModel, Environment, EpochTimeModel, Workload};
use ce_sim_core::event::EventQueue;
use ce_sim_core::rng::SimRng;
use ce_sim_core::time::SimTime;
use serde::{Deserialize, Serialize};

/// Measured execution of one stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredStage {
    /// Stage wall-clock seconds (last trial completion).
    pub wall_s: f64,
    /// Dollars across all trials.
    pub cost_usd: f64,
    /// Maximum functions running at once (must respect the quota).
    pub peak_functions: u32,
    /// Trials executed.
    pub trials: u32,
}

/// Simulates a stage of `trials` trials × `epochs` epochs each, every
/// trial using `alloc`, under `max_concurrency` total functions.
///
/// # Panics
/// Panics if `trials == 0` or `epochs == 0`.
#[allow(clippy::too_many_arguments)] // flat signature mirrors the stage parameters q, r, C of the plan model
pub fn simulate_stage(
    env: &Environment,
    config: &PlatformConfig,
    w: &Workload,
    alloc: &Allocation,
    trials: u32,
    epochs: u32,
    max_concurrency: u32,
    rng: &mut SimRng,
) -> MeasuredStage {
    assert!(trials > 0 && epochs > 0);
    let slots = (max_concurrency / alloc.n).max(1);
    let time_model = EpochTimeModel::new(env);
    let cost_model = CostModel::new(env);
    let mean_epoch = time_model.epoch_time(w, alloc).total();
    let mean_cost = cost_model
        .epoch_estimate(w, alloc)
        .expect("measured stage allocations come from the environment catalog")
        .1;

    // Per-trial durations/costs: r epochs with trial-level jitter.
    let durations: Vec<f64> = (0..trials)
        .map(|_| {
            f64::from(epochs) * mean_epoch * rng.lognormal_jitter(config.compute_jitter.max(0.02))
        })
        .collect();
    let costs: Vec<f64> = (0..trials)
        .map(|_| f64::from(epochs) * mean_cost.total() * rng.lognormal_jitter(0.02))
        .collect();

    // Greedy packing on the event queue: start trials while slots free,
    // start the next one at each completion.
    let mut queue: EventQueue<u32> = EventQueue::new();
    let mut next_trial: u32 = 0;
    let mut running: u32 = 0;
    let mut peak: u32 = 0;
    let mut wall = 0.0f64;
    while next_trial < trials && running < slots {
        queue.schedule_at(
            SimTime::from_secs(durations[next_trial as usize]),
            next_trial,
        );
        next_trial += 1;
        running += 1;
    }
    peak = peak.max(running * alloc.n);
    while let Some((at, _trial)) = queue.pop() {
        running -= 1;
        wall = wall.max(at.as_secs());
        if next_trial < trials {
            queue.schedule_at(at + durations[next_trial as usize], next_trial);
            next_trial += 1;
            running += 1;
            peak = peak.max((running) * alloc.n);
        }
    }
    MeasuredStage {
        wall_s: wall,
        cost_usd: costs.iter().sum(),
        peak_functions: peak,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_storage::StorageKind;

    fn setup() -> (Environment, PlatformConfig, Workload) {
        (
            Environment::aws_default(),
            PlatformConfig::default(),
            Workload::lr_higgs(),
        )
    }

    fn run(alloc: Allocation, trials: u32, epochs: u32, quota: u32, seed: u64) -> MeasuredStage {
        let (env, config, w) = setup();
        let mut rng = SimRng::new(seed);
        simulate_stage(&env, &config, &w, &alloc, trials, epochs, quota, &mut rng)
    }

    #[test]
    fn respects_the_concurrency_quota() {
        let alloc = Allocation::new(100, 1769, StorageKind::S3);
        let m = run(alloc, 32, 2, 3000, 1);
        assert!(m.peak_functions <= 3000, "peak {}", m.peak_functions);
        assert_eq!(m.trials, 32);
    }

    #[test]
    fn wall_between_perfect_packing_and_wave_bound() {
        let (env, _, w) = setup();
        let alloc = Allocation::new(100, 1769, StorageKind::S3);
        let quota = 3000;
        let trials = 32u32;
        let epochs = 2u32;
        let m = run(alloc, trials, epochs, quota, 3);
        let mean_epoch = EpochTimeModel::new(&env).epoch_time(&w, &alloc).total();
        let trial_s = f64::from(epochs) * mean_epoch;
        let slots = quota / alloc.n; // 30
        let waves = trials.div_ceil(slots); // 2
                                            // Lower bound: perfect packing of total work over the slots.
        let ideal = trial_s * f64::from(trials) / f64::from(slots);
        // Upper bound: the rigid wave model plus jitter headroom.
        let wave_bound = trial_s * f64::from(waves) * 1.15;
        assert!(
            m.wall_s >= ideal * 0.85,
            "wall {} < ideal {ideal}",
            m.wall_s
        );
        assert!(
            m.wall_s <= wave_bound,
            "wall {} > waves {wave_bound}",
            m.wall_s
        );
    }

    #[test]
    fn uncontended_stage_runs_fully_parallel() {
        let (env, _, w) = setup();
        let alloc = Allocation::new(10, 1769, StorageKind::S3);
        let m = run(alloc, 16, 2, 3000, 5);
        // 16 trials × 10 fns = 160 ≤ 3000: wall ≈ slowest single trial.
        let mean_epoch = EpochTimeModel::new(&env).epoch_time(&w, &alloc).total();
        assert!(m.wall_s < 2.0 * mean_epoch * 1.2);
        assert_eq!(m.peak_functions, 160);
    }

    #[test]
    fn single_slot_serializes_trials() {
        let (env, _, w) = setup();
        // n = 200 with quota 200: one trial at a time.
        let alloc = Allocation::new(200, 1769, StorageKind::S3);
        let m = run(alloc, 4, 1, 200, 7);
        let mean_epoch = EpochTimeModel::new(&env).epoch_time(&w, &alloc).total();
        assert!(m.wall_s > 3.5 * mean_epoch);
        assert_eq!(m.peak_functions, 200);
    }

    #[test]
    fn deterministic_per_seed() {
        let alloc = Allocation::new(50, 1769, StorageKind::S3);
        assert_eq!(run(alloc, 8, 2, 3000, 9), run(alloc, 8, 2, 3000, 9));
        assert_ne!(
            run(alloc, 8, 2, 3000, 9).wall_s,
            run(alloc, 8, 2, 3000, 10).wall_s
        );
    }

    #[test]
    fn cost_scales_with_trial_count() {
        let alloc = Allocation::new(10, 1769, StorageKind::S3);
        let small = run(alloc, 8, 2, 3000, 11);
        let large = run(alloc, 32, 2, 3000, 11);
        let ratio = large.cost_usd / small.cost_usd;
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    }
}
