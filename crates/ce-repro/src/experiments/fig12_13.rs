//! Figs. 12–13: model training across the five workloads, comparing
//! CE-scaling, Siren, and (modified) Cirrus, averaged over repeated runs.
//!
//! Fig. 12 fixes a budget and reports JCT with the communication share
//! highlighted ("the bottom of each bar indicates the overhead of
//! communication"; JCT includes scheduling overhead). The paper reports
//! CE reducing JCT by up to 56 %. Fig. 13 fixes a QoS constraint and
//! reports cost with the storage share highlighted (up to 35 % cost
//! reduction).

use crate::context;
use crate::report::{pct, secs, usd, Table};
use ce_models::Environment;
use ce_workflow::{Constraint, Method, TrainingJob};
use rayon::prelude::*;
use serde_json::{json, Value};

struct Avg {
    jct_s: f64,
    cost_usd: f64,
    comm_s: f64,
    storage_usd: f64,
    restarts: f64,
    violations: u32,
    runs: u32,
}

fn run_matrix(budget_mode: bool, quick: bool) -> Value {
    let env = Environment::aws_default();
    let workloads = context::paper_workloads();
    let seeds = context::seeds(quick);

    // Private per-cell registries, merged in cell order after the
    // parallel sweep, keep the global event stream deterministic at any
    // thread count.
    let cells: Vec<(Value, ce_obs::Registry)> = workloads
        .par_iter()
        .flat_map(|w| {
            let constraint = if budget_mode {
                Constraint::Budget(context::training_budget(&env, w))
            } else {
                Constraint::Deadline(context::training_deadline(&env, w))
            };
            Method::TRAINING
                .par_iter()
                .map(|&method| {
                    let cell_obs = ce_obs::Registry::new();
                    let mut acc = Avg {
                        jct_s: 0.0,
                        cost_usd: 0.0,
                        comm_s: 0.0,
                        storage_usd: 0.0,
                        restarts: 0.0,
                        violations: 0,
                        runs: 0,
                    };
                    for &seed in &seeds {
                        let job = TrainingJob::new(w.clone(), constraint)
                            .with_seed(seed)
                            .with_obs(&cell_obs);
                        if let Ok(r) = job.run(method) {
                            acc.jct_s += r.jct_s;
                            acc.cost_usd += r.cost_usd;
                            acc.comm_s += r.comm_s;
                            acc.storage_usd += r.storage_cost_usd;
                            acc.restarts += f64::from(r.restarts);
                            acc.violations += u32::from(r.budget_violated || r.qos_violated);
                            acc.runs += 1;
                        }
                    }
                    let n = f64::from(acc.runs.max(1));
                    let cell = json!({
                        "workload": w.label(),
                        "method": method.label(),
                        "jct_s": acc.jct_s / n,
                        "cost_usd": acc.cost_usd / n,
                        "comm_s": acc.comm_s / n,
                        "storage_usd": acc.storage_usd / n,
                        "restarts": acc.restarts / n,
                        "violations": acc.violations,
                        "runs": acc.runs,
                    });
                    (cell, cell_obs)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let cells: Vec<Value> = cells
        .into_iter()
        .map(|(cell, obs)| {
            ce_obs::global().merge_from(&obs);
            cell
        })
        .collect();

    let title = if budget_mode {
        "Fig. 12 — training JCT given a budget (comm share in parentheses)"
    } else {
        "Fig. 13 — training cost given a QoS constraint (storage share in parentheses)"
    };
    println!("{title}; averages over {} runs\n", seeds.len());
    let mut table = Table::new([
        "Workload",
        "CE-scaling",
        "Siren",
        "Cirrus",
        "CE vs best baseline",
    ]);
    for w in &workloads {
        let get = |m: &str| {
            cells
                .iter()
                .find(|c| c["workload"] == w.label() && c["method"] == m)
        };
        let fmt = |c: Option<&Value>| -> String {
            let Some(c) = c else { return "err".into() };
            if budget_mode {
                let jct = c["jct_s"].as_f64().unwrap();
                let comm = c["comm_s"].as_f64().unwrap();
                format!("{} ({})", secs(jct), pct(comm / jct.max(1e-9)))
            } else {
                let cost = c["cost_usd"].as_f64().unwrap();
                let st = c["storage_usd"].as_f64().unwrap();
                format!("{} ({})", usd(cost), pct(st / cost.max(1e-12)))
            }
        };
        let metric = if budget_mode { "jct_s" } else { "cost_usd" };
        let ce = get("CE-scaling").and_then(|c| c[metric].as_f64());
        let best_baseline = ["Siren", "Cirrus"]
            .iter()
            .filter_map(|m| get(m).and_then(|c| c[metric].as_f64()))
            .fold(f64::INFINITY, f64::min);
        let improvement = ce
            .map(|c| 1.0 - c / best_baseline)
            .map_or("n/a".into(), |i| format!("{:.1}%", i * 100.0));
        table.row([
            w.label(),
            fmt(get("CE-scaling")),
            fmt(get("Siren")),
            fmt(get("Cirrus")),
            improvement,
        ]);
    }
    table.print();
    println!();
    let key = if budget_mode { "fig12" } else { "fig13" };
    let mut map = serde_json::Map::new();
    map.insert(key.to_string(), Value::Array(cells));
    Value::Object(map)
}

/// Fig. 12: JCT given a budget.
pub fn run_fig12(quick: bool) -> Value {
    run_matrix(true, quick)
}

/// Fig. 13: cost given a QoS constraint.
pub fn run_fig13(quick: bool) -> Value {
    run_matrix(false, quick)
}

#[cfg(test)]
mod tests {
    #[test]
    fn ce_competitive_on_mean_jct() {
        let v = super::run_fig12(true);
        let cells = v["fig12"].as_array().unwrap();
        {
            let workload = "MobileNet-Cifar10";
            let get = |m: &str| {
                cells
                    .iter()
                    .find(|c| c["workload"] == workload && c["method"] == m)
                    .and_then(|c| c["jct_s"].as_f64())
                    .unwrap()
            };
            let ce = get("CE-scaling");
            assert!(ce <= get("Siren") * 1.05, "CE {ce} vs Siren");
            assert!(ce <= get("Cirrus") * 1.10, "CE {ce} vs Cirrus");
        }
    }
}
