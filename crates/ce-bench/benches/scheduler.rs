//! Adaptive-scheduler benchmarks (Fig. 21b): per-epoch decision latency
//! with and without Pareto pruning, plus the online curve fit.

use ce_bench::Group;
use ce_ml::curve::{CurveParams, LossCurve};
use ce_ml::model::ModelFamily;
use ce_models::{Environment, Workload};
use ce_pareto::ParetoProfiler;
use ce_sim_core::rng::SimRng;
use ce_training::{AdaptiveScheduler, LossCurveFitter, SchedulerConfig, TrainingObjective};
use std::hint::black_box;

fn bench_epoch_decision() {
    let env = Environment::aws_default();
    let w = Workload::mobilenet_cifar10();
    let profile = ParetoProfiler::new(&env).profile_workload(&w);
    let params = CurveParams::for_workload(ModelFamily::MobileNet, "Cifar10");

    let group = Group::new("scheduler/epoch-decision");
    for (name, use_pareto) in [("pareto", true), ("wo-pa-full-grid", false)] {
        group.bench(name, || {
            let mut sched = AdaptiveScheduler::new(
                &profile,
                TrainingObjective::MinJctGivenBudget { budget: 50.0 },
                0.2,
                params.initial,
                SchedulerConfig {
                    use_pareto,
                    delta: 0.01,
                    ..SchedulerConfig::default()
                },
            );
            sched.initial_allocation(40.0);
            let mut run = LossCurve::sample_optimal(&params, SimRng::new(3));
            for _ in 0..30 {
                black_box(sched.on_epoch_end(run.next_epoch(), 0.3, 30.0));
            }
            black_box(sched.stats())
        });
    }
}

fn bench_curve_fit() {
    let params = CurveParams::for_workload(ModelFamily::LogisticRegression, "Higgs");
    let group = Group::new("scheduler/curve-fit");
    for epochs in [5usize, 20, 60] {
        let mut run = LossCurve::sample_optimal(&params, SimRng::new(9));
        let history: Vec<f64> = (0..epochs).map(|_| run.next_epoch()).collect();
        let fitter = LossCurveFitter::new(params.initial);
        group.bench(&epochs.to_string(), || {
            black_box(fitter.fit(black_box(&history)))
        });
    }
}

fn main() {
    bench_epoch_decision();
    bench_curve_fit();
}
