//! The indexed ready-set behind [`crate::fleet::FleetEngine::Heap`].
//!
//! The naive engine keeps ready jobs in a `Vec<usize>` and, on every
//! event, materializes the whole queue as [`crate::policy::ReadyJob`]s,
//! linear-scans it through `pick`, and removes the winner with an O(n)
//! shift — O(queue) work per dispatch decision, O(n²) over a fleet. The
//! heap engine instead keeps the queue as an ordered set keyed by the
//! policy's [`crate::policy::AdmissionPolicy::dispatch_key`] paired with
//! the job id: the next dispatch is the set's minimum, and push/pop are
//! O(log queue).
//!
//! Determinism argument: built-in dispatch keys never produce NaN and
//! the job id is unique, so the `(key, id)` minimum is unique and
//! matches the naive scan's `(key, id)` `position_min_by` pick exactly
//! (keys are normalized so `-0.0` and `0.0` compare equal under
//! `total_cmp`, as they do under the scan's `PartialOrd`). Keys are
//! computed once at enqueue time and are stable while queued — a job's
//! allocation and queue-entry stamp only change after it leaves the set.

use std::collections::BTreeSet;

/// Ordered ready-set: jobs keyed by `(dispatch key, job index)`,
/// minimum first.
#[derive(Debug, Default)]
pub(crate) struct ReadySet {
    set: BTreeSet<Entry>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    /// Monotone total-order encoding of the f64 key (same order as
    /// `f64::total_cmp`), so `Ord` on the tuple is the dispatch order.
    key_bits: u64,
    job: usize,
}

/// Maps an f64 to bits whose unsigned order equals `total_cmp` order.
/// `-0.0` is folded onto `0.0` first: the naive scan's `PartialOrd`
/// treats them as equal (falling through to the id tie-break), and the
/// indexed engine must not order them.
fn order_bits(key: f64) -> u64 {
    let key = if key == 0.0 { 0.0 } else { key };
    let bits = key.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

impl ReadySet {
    /// Jobs currently ready.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Inserts `job` with its dispatch `key`.
    pub fn push(&mut self, key: f64, job: usize) {
        let inserted = self.set.insert(Entry {
            key_bits: order_bits(key),
            job,
        });
        debug_assert!(inserted, "job {job} enqueued twice");
    }

    /// The job the policy dispatches next, without removing it.
    pub fn peek_min(&self) -> Option<usize> {
        self.set.first().map(|e| e.job)
    }

    /// Removes and returns the job the policy dispatches next.
    pub fn pop_min(&mut self) -> Option<usize> {
        self.set.pop_first().map(|e| e.job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_then_id_order() {
        let mut set = ReadySet::default();
        set.push(5.0, 2);
        set.push(1.0, 7);
        set.push(5.0, 0); // same key as job 2: lower id wins
        set.push(3.0, 4);
        let order: Vec<usize> = std::iter::from_fn(|| set.pop_min()).collect();
        assert_eq!(order, vec![7, 4, 0, 2]);
        assert_eq!(set.len(), 0);
    }

    #[test]
    fn head_of_line_stall_keeps_the_head_stable() {
        // A quota stall leaves the set untouched; the same head must be
        // picked on every retry until it actually dispatches, and jobs
        // that queued later (larger FIFO key) must stay behind it.
        let mut set = ReadySet::default();
        set.push(10.0, 0); // queued earliest → head of line
        set.push(20.0, 1);
        for _ in 0..3 {
            assert_eq!(set.peek_min(), Some(0), "stall must not rotate the head");
        }
        set.push(30.0, 2); // arrives during the stall, behind everyone
        assert_eq!(set.pop_min(), Some(0));
        assert_eq!(set.pop_min(), Some(1));
        assert_eq!(set.pop_min(), Some(2));
    }

    #[test]
    fn negative_zero_ties_break_on_id_like_the_naive_scan() {
        let mut set = ReadySet::default();
        set.push(0.0, 5);
        set.push(-0.0, 9);
        assert_eq!(set.pop_min(), Some(5), "-0.0 must not outrank 0.0");
        assert_eq!(set.pop_min(), Some(9));
    }

    #[test]
    fn negative_and_fractional_keys_order_numerically() {
        let mut set = ReadySet::default();
        set.push(0.5, 1);
        set.push(-3.25, 2);
        set.push(-0.5, 3);
        set.push(2.0, 4);
        let order: Vec<usize> = std::iter::from_fn(|| set.pop_min()).collect();
        assert_eq!(order, vec![2, 3, 1, 4]);
    }

    #[test]
    fn empty_set_peeks_and_pops_none() {
        let mut set = ReadySet::default();
        assert_eq!(set.len(), 0);
        assert_eq!(set.peek_min(), None);
        assert_eq!(set.pop_min(), None);
    }
}
