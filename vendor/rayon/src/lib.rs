//! Sequential stand-in for rayon's parallel-iterator API.
//!
//! The offline build cannot fetch rayon, so this shim exposes the same
//! combinator surface (`par_iter`, `into_par_iter`, `map`, `flat_map`,
//! `fold`/`reduce` with rayon's identity-closure signatures, `sum`,
//! `collect`, ...) executed sequentially. That trade is deliberate beyond
//! the build constraint: sequential execution makes every reduction order —
//! including float accumulation — deterministic, which the observability
//! layer's byte-identical-export guarantee relies on.

use std::cmp::Ordering;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// The "parallel" iterator adapter: a newtype over a std iterator.
///
/// A distinct type (rather than a re-export of `Iterator`) is required
/// because rayon's `fold`/`reduce` take identity *closures*, which would
/// collide with `Iterator::fold`'s seed-value signature.
pub struct ParIter<I>(I);

/// By-value conversion, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Iter: Iterator<Item = Self::Item>;
    type Item;
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = T::IntoIter;
    type Item = T::Item;
    fn into_par_iter(self) -> ParIter<T::IntoIter> {
        ParIter(self.into_iter())
    }
}

/// By-reference conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    type Iter: Iterator<Item = Self::Item>;
    type Item;
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, T: ?Sized> IntoParallelRefIterator<'data> for T
where
    &'data T: IntoIterator,
    T: 'data,
{
    type Iter = <&'data T as IntoIterator>::IntoIter;
    type Item = <&'data T as IntoIterator>::Item;
    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

impl<I: Iterator> ParIter<I> {
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    pub fn flat_map<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, U, F>> {
        ParIter(self.0.flat_map(f))
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    pub fn filter_map<U, F: FnMut(I::Item) -> Option<U>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    /// Rayon-style fold: seeds with `identity()` and folds every item into
    /// one accumulator, yielding a single-item iterator (rayon yields one
    /// accumulator per split; sequentially there is exactly one split).
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    /// Rayon-style reduce: folds items onto `identity()`.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn max_by<F: FnMut(&I::Item, &I::Item) -> Ordering>(self, f: F) -> Option<I::Item> {
        self.0.max_by(f)
    }

    pub fn min_by<F: FnMut(&I::Item, &I::Item) -> Ordering>(self, f: F) -> Option<I::Item> {
        self.0.min_by(f)
    }

    pub fn max_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
        self.0.max_by_key(f)
    }

    pub fn min_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
        self.0.min_by_key(f)
    }

    pub fn any<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
        let mut it = self.0;
        it.any(f)
    }

    pub fn all<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
        let mut it = self.0;
        it.all(f)
    }

    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    pub fn zip<J: IntoParallelIterator>(self, other: J) -> ParIter<std::iter::Zip<I, J::Iter>> {
        ParIter(self.0.zip(other.into_par_iter().0))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_reduce_matches_sequential() {
        let data: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let total: f32 = data
            .par_iter()
            .fold(|| 0.0f32, |acc, &x| acc + x)
            .reduce(|| 0.0f32, |a, b| a + b);
        assert_eq!(total, data.iter().sum::<f32>());
    }

    #[test]
    fn ranges_and_collect_work() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
        let n: usize = (0..10usize).into_par_iter().filter(|&i| i % 2 == 0).count();
        assert_eq!(n, 5);
    }
}
