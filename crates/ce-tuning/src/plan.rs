//! Resource partitioning plans and their objective values.
//!
//! A plan assigns one allocation `θ_i` to every SHA stage. Its predicted
//! JCT is Eq. 7's stage-sequential sum, extended with *trial waves*: a
//! stage running `q_i` concurrent trials of `n_i` functions each can only
//! run `⌊C / n_i⌋` trials at once under the platform concurrency quota
//! `C`, so early stages with thousands of trials execute in waves. This
//! is the resource-competition effect of Fig. 3 — flooding early stages
//! with per-trial resources multiplies the number of waves and blows up
//! the stage JCT.

use crate::sha::ShaSpec;
use ce_pareto::AllocPoint;
use serde::{Deserialize, Serialize};

/// One allocation per SHA stage, with cached per-epoch estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionPlan {
    /// Per-stage allocation points (`θ_1 … θ_d` with their epoch
    /// time/cost estimates).
    pub stages: Vec<AllocPoint>,
    /// The bracket this plan partitions.
    pub sha: ShaSpec,
}

impl PartitionPlan {
    /// Builds a plan; one point per stage.
    ///
    /// # Panics
    /// Panics if the stage count does not match the bracket.
    pub fn new(stages: Vec<AllocPoint>, sha: ShaSpec) -> Self {
        assert_eq!(stages.len(), sha.num_stages(), "one allocation per stage");
        PartitionPlan { stages, sha }
    }

    /// A *static* plan: the same allocation for every stage (the
    /// LambdaML/Siren baseline shape).
    pub fn uniform(point: AllocPoint, sha: ShaSpec) -> Self {
        PartitionPlan::new(vec![point; sha.num_stages()], sha)
    }

    /// Number of concurrent-trial waves stage `i` needs under a platform
    /// concurrency quota.
    pub fn waves(&self, stage: usize, max_concurrency: u32) -> u32 {
        let q = self.sha.trials_in_stage(stage);
        let n = self.stages[stage].alloc.n;
        let per_wave = (max_concurrency / n).max(1);
        q.div_ceil(per_wave)
    }

    /// Stage `i`'s JCT: `r_i · t'(θ_i) · waves_i`.
    pub fn stage_jct(&self, stage: usize, max_concurrency: u32) -> f64 {
        f64::from(self.sha.epochs_per_stage)
            * self.stages[stage].time_s()
            * f64::from(self.waves(stage, max_concurrency))
    }

    /// Stage `i`'s cost: `q_i · r_i · c'(θ_i)`.
    pub fn stage_cost(&self, stage: usize) -> f64 {
        f64::from(self.sha.trials_in_stage(stage))
            * f64::from(self.sha.epochs_per_stage)
            * self.stages[stage].cost_usd()
    }

    /// Total predicted JCT `T^h(a)` (Eq. 7 with waves).
    pub fn jct(&self, max_concurrency: u32) -> f64 {
        (0..self.stages.len())
            .map(|i| self.stage_jct(i, max_concurrency))
            .sum()
    }

    /// Total predicted cost `C^h(a)` (Eq. 8/11).
    pub fn cost(&self) -> f64 {
        (0..self.stages.len()).map(|i| self.stage_cost(i)).sum()
    }

    /// Per-trial cost share of each stage, normalized to a reference plan
    /// (Fig. 11's y-axis).
    pub fn per_trial_cost_normalized(&self, reference: &PartitionPlan) -> Vec<f64> {
        (0..self.stages.len())
            .map(|i| {
                let q = f64::from(self.sha.trials_in_stage(i));
                let own = self.stage_cost(i) / q;
                let base = reference.stage_cost(i) / q;
                own / base
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_models::{Allocation, CostBreakdown, TimeBreakdown};
    use ce_storage::StorageKind;

    fn point(n: u32, time: f64, cost: f64) -> AllocPoint {
        AllocPoint {
            alloc: Allocation::new(n, 1769, StorageKind::S3),
            time: TimeBreakdown {
                load_s: 0.0,
                compute_s: time,
                sync_s: 0.0,
            },
            cost: CostBreakdown {
                invocation: 0.0,
                compute: cost,
                storage_requests: 0.0,
                storage_runtime: 0.0,
            },
        }
    }

    fn sha() -> ShaSpec {
        ShaSpec::motivation_example() // 32,16,8,4,2 × 2 epochs
    }

    #[test]
    fn uniform_plan_has_identical_stages() {
        let plan = PartitionPlan::uniform(point(10, 5.0, 0.01), sha());
        assert_eq!(plan.stages.len(), 5);
        assert!(plan.stages.iter().all(|p| p.alloc.n == 10));
    }

    #[test]
    fn jct_sums_stage_epochs() {
        // No concurrency pressure: 32 trials × 10 fns = 320 ≤ 3000.
        let plan = PartitionPlan::uniform(point(10, 5.0, 0.01), sha());
        // 5 stages × 2 epochs × 5 s.
        assert!((plan.jct(3000) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn cost_weights_by_trial_count() {
        let plan = PartitionPlan::uniform(point(10, 5.0, 0.01), sha());
        // Σ q_i = 62; × 2 epochs × $0.01.
        assert!((plan.cost() - 62.0 * 2.0 * 0.01).abs() < 1e-9);
    }

    #[test]
    fn waves_kick_in_under_concurrency_pressure() {
        let plan = PartitionPlan::uniform(point(100, 5.0, 0.01), sha());
        // Stage 1: 32 trials × 100 fns; 3000/100 = 30 trials per wave -> 2
        // waves.
        assert_eq!(plan.waves(0, 3000), 2);
        // Stage 3: 8 trials fit in one wave.
        assert_eq!(plan.waves(2, 3000), 1);
        // JCT doubles for stage 1 relative to an uncontended run.
        assert!((plan.stage_jct(0, 3000) - 2.0 * 2.0 * 5.0).abs() < 1e-9);
    }

    #[test]
    fn waves_handle_n_larger_than_quota() {
        let plan = PartitionPlan::uniform(point(100, 5.0, 0.01), sha());
        // Quota smaller than one trial's n: one trial at a time.
        assert_eq!(plan.waves(0, 50), 32);
    }

    #[test]
    fn early_stage_cost_dominates_static_plans() {
        // Fig. 3's observation: under static allocation the first stages
        // carry ~90 % of the cost because cost ∝ trial count.
        let plan = PartitionPlan::uniform(point(10, 5.0, 0.01), sha());
        let total = plan.cost();
        let first_three: f64 = (0..3).map(|i| plan.stage_cost(i)).sum();
        assert!(first_three / total > 0.85, "{}", first_three / total);
        let last = plan.stage_cost(4) / total;
        assert!(last < 0.05, "{last}");
    }

    #[test]
    fn per_trial_normalization_against_self_is_one() {
        let plan = PartitionPlan::uniform(point(10, 5.0, 0.01), sha());
        let norm = plan.per_trial_cost_normalized(&plan);
        assert!(norm.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn mixed_plan_objectives() {
        let cheap = point(4, 10.0, 0.004);
        let fast = point(25, 3.0, 0.02);
        let plan = PartitionPlan::new(vec![cheap, cheap, cheap, fast, fast], sha());
        let uniform_cheap = PartitionPlan::uniform(cheap, sha());
        // Upgrading late stages shortens JCT and raises cost.
        assert!(plan.jct(3000) < uniform_cheap.jct(3000));
        assert!(plan.cost() > uniform_cheap.cost());
        // ...but only modestly, since late stages have few trials.
        assert!(plan.cost() < uniform_cheap.cost() * 1.5);
    }

    #[test]
    #[should_panic(expected = "one allocation per stage")]
    fn stage_count_must_match() {
        PartitionPlan::new(vec![point(1, 1.0, 1.0)], sha());
    }
}
