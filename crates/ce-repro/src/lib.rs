//! # ce-repro
//!
//! The table/figure regeneration harness: one module per experiment in
//! the paper's evaluation (§IV). Each experiment prints a human-readable
//! table mirroring the paper's rows/series and returns a
//! machine-readable `serde_json::Value` (the `--json` flag of the
//! `ce-repro` binary prints that instead).
//!
//! Run `ce-repro list` for the experiment index, `ce-repro all` to
//! regenerate everything, or `ce-repro fig9 fig10` for a subset. The
//! `--quick` flag shrinks brackets and seed counts for smoke testing.
//!
//! The mapping from experiment id to paper artifact is in DESIGN.md §4;
//! paper-vs-measured numbers are recorded in EXPERIMENTS.md.

pub mod context;
pub mod experiments;
pub mod report;

use serde_json::Value;

/// One runnable experiment.
pub struct Experiment {
    /// Identifier (e.g. `fig9`).
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// Runs the experiment; `quick` shrinks it for smoke tests.
    pub run: fn(quick: bool) -> Value,
}

/// The full experiment registry, in paper order.
pub fn registry() -> Vec<Experiment> {
    use experiments::*;
    vec![
        Experiment {
            id: "table1",
            title: "Table I: external storage service characteristics",
            run: table1::run,
        },
        Experiment {
            id: "fig3",
            title: "Fig. 3: per-stage JCT, static vs reallocating 10%/30% from stage 1",
            run: fig3::run,
        },
        Experiment {
            id: "fig4",
            title: "Fig. 4: offline vs online epoch-prediction error",
            run: fig4::run,
        },
        Experiment {
            id: "table2",
            title: "Table II: storage services under Cirrus, normalized to S3",
            run: table2::run,
        },
        Experiment {
            id: "fig7",
            title: "Fig. 7: allocation scatter and Pareto boundary (LR-Higgs)",
            run: fig7::run,
        },
        Experiment {
            id: "fig9",
            title: "Fig. 9: tuning JCT given a budget (5 models x 4 methods)",
            run: fig9_10::run_fig9,
        },
        Experiment {
            id: "fig10",
            title: "Fig. 10: tuning cost given a QoS constraint",
            run: fig9_10::run_fig10,
        },
        Experiment {
            id: "fig11",
            title: "Fig. 11: normalized per-trial budget per stage (LR-Higgs)",
            run: fig11::run,
        },
        Experiment {
            id: "fig12",
            title: "Fig. 12: training JCT given a budget, with comm breakdown",
            run: fig12_13::run_fig12,
        },
        Experiment {
            id: "fig13",
            title: "Fig. 13: training cost given a QoS constraint, with storage breakdown",
            run: fig12_13::run_fig13,
        },
        Experiment {
            id: "fig14",
            title: "Fig. 14: tuning under varying budget/QoS scales (LR-YFCC)",
            run: fig14_15::run_fig14,
        },
        Experiment {
            id: "fig15",
            title: "Fig. 15: training under varying budget/QoS scales (LR-YFCC)",
            run: fig14_15::run_fig15,
        },
        Experiment {
            id: "fig16",
            title: "Fig. 16: tuning under the same storage (S3, VM-PS), MobileNet",
            run: fig16_17::run_fig16,
        },
        Experiment {
            id: "fig17",
            title: "Fig. 17: training under the same storage (S3, VM-PS), MobileNet",
            run: fig16_17::run_fig17,
        },
        Experiment {
            id: "fig18",
            title: "Fig. 18: CE-scaling under fixed storage (D/S/E/V)",
            run: fig18::run,
        },
        Experiment {
            id: "fig19",
            title: "Fig. 19: model validation vs number of functions",
            run: fig19_20::run_fig19,
        },
        Experiment {
            id: "fig20",
            title: "Fig. 20: model validation vs memory size",
            run: fig19_20::run_fig20,
        },
        Experiment {
            id: "fig21a",
            title: "Fig. 21a: tuning scheduling overhead (CE vs WO-pa)",
            run: fig21::run_fig21a,
        },
        Experiment {
            id: "fig21b",
            title: "Fig. 21b: training scheduling overhead (CE vs WO-pa vs WO-pa-dr)",
            run: fig21::run_fig21b,
        },
        Experiment {
            id: "fig21c",
            title: "Fig. 21c: impact of the adjustment threshold delta",
            run: fig21::run_fig21c,
        },
        Experiment {
            id: "table4",
            title: "Table IV: experimental configurations",
            run: table4::run,
        },
        Experiment {
            id: "ext-asp",
            title: "Extension: BSP vs ASP synchronization trade-off",
            run: ext_asp::run,
        },
        Experiment {
            id: "ext-contention",
            title: "Extension: single-node storage saturation",
            run: ext_contention::run,
        },
        Experiment {
            id: "ext-failures",
            title: "Extension: recovery policies under worker crashes",
            run: ext_failures::run,
        },
    ]
}
