//! Extension experiment: training under worker failures.
//!
//! Serverless workers are preemptible in practice (spot capacity,
//! runtime crashes, throttling); the paper's evaluation assumes failure-
//! free runs. This extension injects per-worker-epoch failures and
//! measures how CE-scaling's JCT and cost degrade as the failure rate
//! grows — the BSP barrier stalls for the slowest retry, so the overhead
//! scales with the failure probability and the epoch length.

use crate::context;
use crate::report::{secs, usd, Table};
use ce_faas::PlatformConfig;
use ce_models::{Environment, Workload};
use ce_workflow::{Constraint, Method, TrainingJob};
use serde_json::{json, Value};

/// Runs the failure-rate sweep.
pub fn run(quick: bool) -> Value {
    let env = Environment::aws_default();
    let w = Workload::mobilenet_cifar10();
    let budget = context::training_budget(&env, &w) * 1.5;
    let seeds = context::seeds(quick);
    let rates = [0.0, 0.01, 0.05, 0.1, 0.2];

    let mut cells = Vec::new();
    println!(
        "Extension — CE-scaling training under worker failures ({}, budget {})\n",
        w.label(),
        usd(budget)
    );
    let mut table = Table::new(["failure rate", "JCT", "cost", "epochs", "runs"]);
    for &rate in &rates {
        let mut jct = 0.0;
        let mut cost = 0.0;
        let mut epochs = 0.0;
        let mut runs = 0u32;
        for &seed in &seeds {
            let job = TrainingJob::new(w.clone(), Constraint::Budget(budget))
                .with_seed(seed)
                .with_platform_config(PlatformConfig {
                    failure_rate: rate,
                    ..PlatformConfig::default()
                });
            if let Ok(r) = job.run(Method::CeScaling) {
                jct += r.jct_s;
                cost += r.cost_usd;
                epochs += f64::from(r.epochs);
                runs += 1;
            }
        }
        let n = f64::from(runs.max(1));
        table.row([
            format!("{:.0}%", rate * 100.0),
            secs(jct / n),
            usd(cost / n),
            format!("{:.1}", epochs / n),
            runs.to_string(),
        ]);
        cells.push(json!({
            "failure_rate": rate,
            "jct_s": jct / n,
            "cost_usd": cost / n,
            "epochs": epochs / n,
            "runs": runs,
        }));
    }
    table.print();
    println!(
        "\nFailures stall the barrier for the slowest retry; the adaptive\n\
         scheduler absorbs the extra spend by drifting toward cheaper\n\
         allocations when the budget tightens."
    );
    json!({ "ext_failures": cells })
}

#[cfg(test)]
mod tests {
    #[test]
    fn failures_cost_wall_time_but_jobs_still_finish() {
        let v = super::run(true);
        let cells = v["ext_failures"].as_array().unwrap();
        let jct = |rate: f64| {
            cells
                .iter()
                .find(|c| c["failure_rate"] == rate)
                .and_then(|c| c["jct_s"].as_f64())
                .unwrap()
        };
        assert!(jct(0.2) > jct(0.0), "20% failures must cost wall time");
        // Every rate completed at least one run.
        for c in cells {
            assert!(c["runs"].as_u64().unwrap() >= 1);
        }
    }
}
