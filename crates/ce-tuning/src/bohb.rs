//! A BOHB-style model-based configuration sampler (TPE).
//!
//! §II-A notes that "other methods for hyperparameter tuning (e.g.,
//! BOHB) share the same idea of repeatedly terminating poorly performing
//! trials … thus, our work can be applied to them". This module provides
//! the model-based half of BOHB: a Tree-structured Parzen Estimator that
//! proposes configurations by density ratio, so successive brackets
//! concentrate trials near the good region while CE-scaling's planner
//! keeps handling the *resources* of each bracket unchanged.
//!
//! The estimator works in the 2-D space (log learning-rate, momentum):
//! observed configurations are split at the γ-quantile of their losses
//! into *good* and *bad* sets, each modelled as a Parzen window (mixture
//! of axis-aligned Gaussians); candidates are drawn from the good model
//! and the one maximizing `l_good(x) / l_bad(x)` is suggested.

use ce_ml::{HyperConfig, HyperSpace};
use ce_sim_core::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A TPE sampler over a hyperparameter space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TpeSampler {
    space: HyperSpace,
    /// Observations: (configuration, observed loss).
    archive: Vec<(HyperConfig, f64)>,
    /// Quantile splitting good from bad (BOHB default 0.15–0.25).
    pub gamma: f64,
    /// Observations required before the model replaces random sampling.
    pub min_observations: usize,
    /// Candidates drawn per suggestion.
    pub candidates: usize,
}

impl TpeSampler {
    /// Creates a sampler with BOHB-like defaults.
    pub fn new(space: HyperSpace) -> Self {
        TpeSampler {
            space,
            archive: Vec::new(),
            gamma: 0.25,
            min_observations: 8,
            candidates: 24,
        }
    }

    /// Number of observations recorded.
    pub fn observations(&self) -> usize {
        self.archive.len()
    }

    /// Records an observed (configuration, loss) pair.
    pub fn observe(&mut self, config: HyperConfig, loss: f64) {
        assert!(loss.is_finite(), "loss must be finite");
        self.archive.push((config, loss));
    }

    /// Suggests the next configuration: random before
    /// [`Self::min_observations`], model-based afterwards.
    pub fn suggest(&self, rng: &mut SimRng) -> HyperConfig {
        if self.archive.len() < self.min_observations {
            return self.space.sample(rng);
        }
        // Split the archive at the γ-quantile of losses.
        let mut sorted: Vec<&(HyperConfig, f64)> = self.archive.iter().collect();
        sorted.sort_by(|a, b| a.1.total_cmp(&b.1));
        let n_good =
            ((sorted.len() as f64 * self.gamma).ceil() as usize).clamp(2, sorted.len() - 1);
        let good: Vec<[f64; 2]> = sorted[..n_good].iter().map(|(c, _)| embed(c)).collect();
        let bad: Vec<[f64; 2]> = sorted[n_good..].iter().map(|(c, _)| embed(c)).collect();
        let bw = self.bandwidths();

        // Draw candidates from the good Parzen model; keep the best
        // density ratio.
        let mut best: Option<(f64, HyperConfig)> = None;
        for _ in 0..self.candidates {
            let center = good[rng.gen_index(good.len())];
            let x = [
                center[0] + bw[0] * rng.normal(),
                center[1] + bw[1] * rng.normal(),
            ];
            let Some(config) = self.unembed(x) else {
                continue;
            };
            let ratio = parzen(&good, x, bw) / parzen(&bad, x, bw).max(1e-12);
            if best.as_ref().is_none_or(|(r, _)| ratio > *r) {
                best = Some((ratio, config));
            }
        }
        best.map(|(_, c)| c)
            .unwrap_or_else(|| self.space.sample(rng))
    }

    /// Per-dimension Parzen bandwidths: a fixed fraction of the space's
    /// extent (simple and robust for 2-D).
    fn bandwidths(&self) -> [f64; 2] {
        let lr_extent = (self.space.lr_range.1 / self.space.lr_range.0).ln();
        let m_extent = self.space.momentum_range.1 - self.space.momentum_range.0;
        [lr_extent * 0.12, m_extent * 0.12]
    }

    fn unembed(&self, x: [f64; 2]) -> Option<HyperConfig> {
        let (lo, hi) = self.space.lr_range;
        let lr = x[0].exp();
        if !(lo..=hi).contains(&lr) {
            return None;
        }
        let momentum = x[1];
        if !(self.space.momentum_range.0..=self.space.momentum_range.1).contains(&momentum) {
            return None;
        }
        Some(HyperConfig {
            learning_rate: lr,
            momentum,
        })
    }
}

/// Embeds a configuration into the Parzen space.
fn embed(c: &HyperConfig) -> [f64; 2] {
    [c.learning_rate.ln(), c.momentum]
}

/// Parzen-window density estimate at `x` with bandwidths `bw`.
fn parzen(points: &[[f64; 2]], x: [f64; 2], bw: [f64; 2]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    points
        .iter()
        .map(|p| {
            let dx = (x[0] - p[0]) / bw[0];
            let dy = (x[1] - p[1]) / bw[1];
            (-0.5 * (dx * dx + dy * dy)).exp()
        })
        .sum::<f64>()
        / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> HyperSpace {
        HyperSpace::default()
    }

    /// The ground-truth loss proxy: better quality → lower loss.
    fn loss_of(space: &HyperSpace, c: &HyperConfig) -> f64 {
        1.0 - space.quality(c)
    }

    #[test]
    fn random_until_min_observations() {
        let sampler = TpeSampler::new(space());
        let mut rng = SimRng::new(1);
        // Fewer than min_observations: suggestions are plain space
        // samples (they follow the space's deterministic stream).
        let a = sampler.suggest(&mut rng);
        let mut rng2 = SimRng::new(1);
        let b = space().sample(&mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    fn model_concentrates_near_the_optimum() {
        let space = space();
        let mut sampler = TpeSampler::new(space.clone());
        let mut rng = SimRng::new(2);
        // Warm up with random observations.
        for _ in 0..40 {
            let c = space.sample(&mut rng);
            sampler.observe(c, loss_of(&space, &c));
        }
        // Model-based suggestions should be much better than random.
        let model_quality: f64 = (0..50)
            .map(|_| space.quality(&sampler.suggest(&mut rng)))
            .sum::<f64>()
            / 50.0;
        let random_quality: f64 = (0..50)
            .map(|_| space.quality(&space.sample(&mut rng)))
            .sum::<f64>()
            / 50.0;
        assert!(
            model_quality > random_quality + 0.15,
            "model {model_quality:.3} vs random {random_quality:.3}"
        );
    }

    #[test]
    fn sequential_bohb_outperforms_random_search() {
        // End-to-end: iteratively observe suggestions; the best found
        // configuration beats pure random search at equal sample count.
        let space = space();
        let budget = 60;
        let mut rng = SimRng::new(3);

        let mut sampler = TpeSampler::new(space.clone());
        let mut best_bohb = 0.0f64;
        for _ in 0..budget {
            let c = sampler.suggest(&mut rng);
            sampler.observe(c, loss_of(&space, &c));
            best_bohb = best_bohb.max(space.quality(&c));
        }

        let mut rng = SimRng::new(3);
        let mut best_random = 0.0f64;
        for _ in 0..budget {
            let c = space.sample(&mut rng);
            best_random = best_random.max(space.quality(&c));
        }
        assert!(
            best_bohb >= best_random,
            "BOHB {best_bohb:.3} < random {best_random:.3}"
        );
        assert!(best_bohb > 0.9);
    }

    #[test]
    fn suggestions_stay_in_bounds() {
        let space = space();
        let mut sampler = TpeSampler::new(space.clone());
        let mut rng = SimRng::new(4);
        for i in 0..100 {
            let c = sampler.suggest(&mut rng);
            assert!(c.learning_rate >= space.lr_range.0 && c.learning_rate <= space.lr_range.1);
            assert!(c.momentum >= space.momentum_range.0 && c.momentum <= space.momentum_range.1);
            sampler.observe(c, (i as f64).sin().abs());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let space = space();
        let run = || {
            let mut sampler = TpeSampler::new(space.clone());
            let mut rng = SimRng::new(5);
            let mut out = Vec::new();
            for _ in 0..20 {
                let c = sampler.suggest(&mut rng);
                sampler.observe(c, loss_of(&space, &c));
                out.push(c);
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_loss_rejected() {
        TpeSampler::new(space()).observe(
            HyperConfig {
                learning_rate: 0.01,
                momentum: 0.9,
            },
            f64::NAN,
        );
    }
}
