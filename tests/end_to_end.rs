//! Cross-crate integration tests: full workflows through the facade.

use ce_scaling::faas::ExecutionFidelity;
use ce_scaling::ml::curve::{table4_target, CurveParams};
use ce_scaling::models::{Allocation, AllocationSpace, CostModel, EpochTimeModel, Workload};
use ce_scaling::prelude::*;
use ce_scaling::storage::StorageKind;
use ce_scaling::workflow::Method;

fn tuning_budget(w: &Workload, sha: ShaSpec, scale: f64) -> f64 {
    let env = Environment::aws_default();
    let profile = ParetoProfiler::new(&env).profile_workload(w);
    ce_scaling::tuning::PartitionPlan::uniform(*profile.cheapest().unwrap(), sha).cost() * scale
}

fn training_budget(w: &Workload, scale: f64) -> f64 {
    let env = Environment::aws_default();
    let profile = ParetoProfiler::new(&env).profile_workload(w);
    let boundary = profile.boundary();
    let mid = boundary[boundary.len() / 2];
    let params = CurveParams::for_workload(w.model.family, &w.dataset.name);
    let target = table4_target(w.model.family, &w.dataset.name);
    mid.cost_usd() * params.mean_epochs_to(target).unwrap() * scale
}

#[test]
fn tuning_full_pipeline_ce_beats_every_baseline() {
    let w = Workload::lr_higgs();
    let sha = ShaSpec::new(512, 2, 2);
    let budget = tuning_budget(&w, sha, 2.5);
    let job =
        TuningJob::new(w, sha, ce_scaling::workflow::Constraint::Budget(budget)).with_seed(100);
    let ce = job.run(Method::CeScaling).expect("CE plans");
    assert!(!ce.budget_violated);
    for baseline in [Method::LambdaMl, Method::Siren, Method::Fixed] {
        let r = job.run(baseline).expect("baseline plans");
        assert!(
            ce.jct_s <= r.jct_s * 1.02,
            "{}: CE {:.0}s vs {:.0}s",
            baseline.label(),
            ce.jct_s,
            r.jct_s
        );
    }
}

#[test]
fn tuning_finds_a_near_optimal_configuration() {
    let w = Workload::lr_higgs();
    let sha = ShaSpec::new(512, 2, 2);
    let budget = tuning_budget(&w, sha, 2.0);
    let job = TuningJob::new(w, sha, ce_scaling::workflow::Constraint::Budget(budget)).with_seed(5);
    let r = job.run(Method::CeScaling).unwrap();
    let quality = job.hyper.quality(&r.best_config);
    assert!(quality > 0.7, "SHA winner quality {quality:.2}");
}

#[test]
fn training_full_pipeline_converges_and_respects_budget() {
    let w = Workload::mobilenet_cifar10();
    let target = table4_target(w.model.family, &w.dataset.name);
    let budget = training_budget(&w, 2.5);
    let job = TrainingJob::new(w, ce_scaling::workflow::Constraint::Budget(budget)).with_seed(3);
    let r = job.run(Method::CeScaling).expect("converges");
    assert!(r.final_loss <= target);
    assert!(
        !r.budget_violated,
        "cost {:.2} vs budget {budget:.2}",
        r.cost_usd
    );
    assert!(r.jct_s > 0.0 && r.epochs > 5);
    assert!(r.comm_s < r.jct_s);
}

#[test]
fn training_reports_are_bit_identical_across_runs() {
    let w = Workload::mobilenet_cifar10();
    let budget = training_budget(&w, 2.0);
    let job = TrainingJob::new(w, ce_scaling::workflow::Constraint::Budget(budget)).with_seed(11);
    let a = job.run(Method::CeScaling).unwrap();
    let b = job.run(Method::CeScaling).unwrap();
    assert_eq!(a, b, "same seed must reproduce the identical report");
}

#[test]
fn different_seeds_give_different_stochastic_outcomes() {
    let w = Workload::mobilenet_cifar10();
    let budget = training_budget(&w, 2.0);
    let epochs: Vec<u32> = (0..4)
        .map(|seed| {
            TrainingJob::new(w.clone(), ce_scaling::workflow::Constraint::Budget(budget))
                .with_seed(seed)
                .run(Method::CeScaling)
                .unwrap()
                .epochs
        })
        .collect();
    let min = epochs.iter().min().unwrap();
    let max = epochs.iter().max().unwrap();
    assert!(
        max > min,
        "convergence epochs must vary across seeds: {epochs:?}"
    );
}

#[test]
fn analytical_model_tracks_simulator_within_paper_band() {
    // The Fig. 19/20 validation property, as a regression test.
    let w = Workload::lr_higgs();
    let env = Environment::aws_default();
    let time_model = EpochTimeModel::new(&env);
    let cost_model = CostModel::new(&env);
    for alloc in [
        Allocation::new(10, 1769, StorageKind::S3),
        Allocation::new(50, 1769, StorageKind::S3),
        Allocation::new(10, 3072, StorageKind::S3),
    ] {
        let est_t = time_model.training_time(&w, &alloc, 5);
        let est_c = cost_model.training_cost(&w, &alloc, 5).expect("catalog");
        let job = TrainingJob::new(
            w.clone(),
            ce_scaling::workflow::Constraint::Budget(f64::INFINITY),
        )
        .with_seed(2);
        let r = job.run_fixed_allocation(alloc, 5, ExecutionFidelity::Event);
        let t_err = (r.jct_s - est_t).abs() / r.jct_s;
        let c_err = (r.cost_usd - est_c).abs() / r.cost_usd;
        assert!(t_err < 0.10, "{alloc}: JCT error {t_err:.3}");
        assert!(c_err < 0.10, "{alloc}: cost error {c_err:.3}");
    }
}

#[test]
fn storage_pinning_flows_through_the_whole_stack() {
    let w = Workload::mobilenet_cifar10();
    let budget = training_budget(&w, 2.5);
    for storage in [StorageKind::S3, StorageKind::ElastiCache, StorageKind::VmPs] {
        let job = TrainingJob::new(w.clone(), ce_scaling::workflow::Constraint::Budget(budget))
            .with_seed(4)
            .with_space(AllocationSpace::aws_default().with_only_storage(storage));
        let r = job.run(Method::CeScaling).unwrap();
        assert!(
            r.allocations.iter().all(|a| a.storage == storage),
            "{storage}: leaked other storage"
        );
    }
}

#[test]
fn lambdaml_offline_prediction_violates_tight_budgets() {
    // §IV-C's reason for excluding LambdaML from the training comparison.
    let w = Workload::mobilenet_cifar10();
    let budget = training_budget(&w, 1.05);
    let violations = (0..6)
        .filter(|&seed| {
            TrainingJob::new(w.clone(), ce_scaling::workflow::Constraint::Budget(budget))
                .with_seed(seed)
                .run(Method::LambdaMl)
                .map(|r| r.budget_violated)
                .unwrap_or(true)
        })
        .count();
    assert!(violations > 0);
}

#[test]
fn training_survives_worker_failures() {
    // Failure injection: with a 5 % per-worker-epoch failure rate the job
    // still converges; JCT degrades but stays the same order.
    let w = Workload::mobilenet_cifar10();
    let budget = training_budget(&w, 3.0);
    let faulty = ce_scaling::faas::PlatformConfig {
        failure_rate: 0.05,
        ..ce_scaling::faas::PlatformConfig::default()
    };
    let mut clean_jct = 0.0;
    let mut faulty_jct = 0.0;
    let mut failures = 0;
    for seed in 0..3 {
        let base = TrainingJob::new(w.clone(), ce_scaling::workflow::Constraint::Budget(budget))
            .with_seed(seed);
        let clean = base.clone().run(Method::CeScaling).unwrap();
        let noisy = base
            .with_platform_config(faulty)
            .run(Method::CeScaling)
            .expect("converges despite failures");
        assert!(noisy.final_loss <= clean.final_loss.max(0.2001));
        clean_jct += clean.jct_s;
        faulty_jct += noisy.jct_s;
        failures += noisy.epochs; // epochs ran; failures counted below
    }
    assert!(failures > 0);
    assert!(
        faulty_jct > clean_jct,
        "failures must cost wall time: {faulty_jct} vs {clean_jct}"
    );
    assert!(
        faulty_jct < clean_jct * 3.0,
        "failure overhead out of bounds"
    );
}

#[test]
fn traces_record_the_full_timeline() {
    let w = Workload::mobilenet_cifar10();
    let budget = training_budget(&w, 2.0);
    let job = TrainingJob::new(w.clone(), ce_scaling::workflow::Constraint::Budget(budget))
        .with_seed(5)
        .with_trace();
    let r = job.run(Method::CeScaling).unwrap();
    let trace = r.trace.as_ref().expect("trace requested");
    assert_eq!(trace.count_epochs(), r.epochs as usize);
    assert_eq!(trace.count_adjustments(), r.restarts as usize);
    // Timeline ends with the Done event at the job's JCT.
    let last = trace.events().last().unwrap();
    assert!((last.at_s - r.jct_s).abs() < 1e-6);
    assert!(matches!(
        last.kind,
        ce_scaling::workflow::TraceKind::Done { .. }
    ));
    // JSONL export parses back.
    assert!(trace.to_jsonl().lines().count() >= r.epochs as usize);

    // Tuning traces carry one Stage event per stage.
    let sha = ShaSpec::new(64, 2, 2);
    let tjob = TuningJob::new(
        w,
        sha,
        ce_scaling::workflow::Constraint::Budget(tuning_budget(
            &Workload::mobilenet_cifar10(),
            sha,
            2.0,
        )),
    )
    .with_trace();
    let tr = tjob.run(Method::CeScaling).unwrap();
    let ttrace = tr.trace.as_ref().expect("trace requested");
    let stage_events = ttrace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, ce_scaling::workflow::TraceKind::Stage { .. }))
        .count();
    assert_eq!(stage_events, sha.num_stages());
}

#[test]
fn quickstart_facade_surface_is_usable() {
    // The README/quickstart API path, end to end.
    let env = Environment::aws_default();
    let profile =
        ParetoProfiler::new(&env).profile(&ModelSpec::logistic_regression(), &DatasetSpec::higgs());
    let theta = profile.cheapest_within_jct(120.0).expect("feasible");
    assert!(theta.time_s() <= 120.0);
    let schedulers = (
        LambdaMlScheduler::new(),
        SirenScheduler::new(),
        CirrusScheduler::new(),
        FixedScheduler::new(),
    );
    let _ = schedulers; // constructors exist and are exported
    let platform = FaasPlatform::new(env, 1);
    assert_eq!(platform.ledger().total_dollars(), 0.0);
    let _config = PlatformConfig::default();
    let _rng = SimRng::new(7);
    let _planner_cfg = PlannerConfig::default();
    let _sched_cfg = SchedulerConfig::default();
}
