//! A real (in-memory) simulated object store.
//!
//! [`SimStore`] is the concrete synchronization medium the platform
//! simulator uses: workers **actually** put and get byte blobs (gradient
//! vectors, model parameters), and every operation returns the simulated
//! duration and billed cost derived from the service's [`StorageSpec`].
//! This keeps the substrate honest — aggregation in the real-SGD validation
//! path really happens through the store, byte for byte.

use std::collections::HashMap;

use bytes::Bytes;
use ce_obs::{Counter, Gauge, Registry};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

use crate::service::StorageSpec;

/// Outcome of a storage operation: how long it took in simulated time and
/// what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpReceipt {
    /// Simulated seconds the operation took.
    pub duration_s: f64,
    /// Dollars billed for the operation (0 for runtime-priced services).
    pub dollars: f64,
}

/// Errors a storage operation can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The object exceeds the service's size limit (e.g. DynamoDB 400 KB).
    ObjectTooLarge {
        size_mb_x1000: u64,
        limit_mb_x1000: u64,
    },
    /// GET of a key that does not exist.
    NotFound(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::ObjectTooLarge {
                size_mb_x1000,
                limit_mb_x1000,
            } => write!(
                f,
                "object of {:.3} MB exceeds the service limit of {:.3} MB",
                *size_mb_x1000 as f64 / 1000.0,
                *limit_mb_x1000 as f64 / 1000.0
            ),
            StoreError::NotFound(key) => write!(f, "no object stored under key {key:?}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// In-memory object store simulating one external storage service.
///
/// Thread-safe: the Pareto profiler and workflow runner fan out across
/// rayon workers that may share a store.
#[derive(Debug)]
pub struct SimStore {
    spec: StorageSpec,
    inner: Mutex<Inner>,
    obs: Option<StoreObs>,
}

/// Per-service metric handles (`storage.<service>.*`), held so the hot
/// path never does a name lookup.
#[derive(Debug, Clone)]
struct StoreObs {
    puts: Counter,
    gets: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    dollars: Gauge,
}

impl StoreObs {
    fn new(registry: &Registry, spec: &StorageSpec) -> Self {
        let prefix = format!("storage.{}", spec.kind).to_lowercase();
        StoreObs {
            puts: registry.counter(&format!("{prefix}.puts")),
            gets: registry.counter(&format!("{prefix}.gets")),
            bytes_in: registry.counter(&format!("{prefix}.bytes_in")),
            bytes_out: registry.counter(&format!("{prefix}.bytes_out")),
            dollars: registry.gauge(&format!("{prefix}.dollars")),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    objects: HashMap<String, Bytes>,
    put_count: u64,
    get_count: u64,
    bytes_in: u64,
    bytes_out: u64,
    dollars: f64,
}

/// Aggregate usage counters for assertions and cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Number of successful PUT operations.
    pub puts: u64,
    /// Number of successful GET operations.
    pub gets: u64,
    /// Total bytes written.
    pub bytes_in: u64,
    /// Total bytes read.
    pub bytes_out: u64,
    /// Total request dollars billed so far.
    pub request_dollars: f64,
}

impl SimStore {
    /// Creates a store backed by the given service description.
    pub fn new(spec: StorageSpec) -> Self {
        SimStore {
            spec,
            inner: Mutex::new(Inner::default()),
            obs: None,
        }
    }

    /// Creates a store that additionally reports per-service request,
    /// byte, and dollar metrics (`storage.<service>.*`) into `registry`.
    pub fn with_registry(spec: StorageSpec, registry: &Registry) -> Self {
        let obs = StoreObs::new(registry, &spec);
        SimStore {
            spec,
            inner: Mutex::new(Inner::default()),
            obs: Some(obs),
        }
    }

    /// The service this store simulates.
    pub fn spec(&self) -> &StorageSpec {
        &self.spec
    }

    /// Stores `value` under `key`, returning the simulated duration/cost.
    pub fn put(&self, key: &str, value: Bytes) -> Result<OpReceipt, StoreError> {
        let size_mb = value.len() as f64 / (1024.0 * 1024.0);
        if let Some(limit) = self.spec.max_object_mb {
            if size_mb > limit {
                return Err(StoreError::ObjectTooLarge {
                    size_mb_x1000: (size_mb * 1000.0) as u64,
                    limit_mb_x1000: (limit * 1000.0) as u64,
                });
            }
        }
        let duration_s = self.spec.transfer_time(size_mb);
        let dollars = self.spec.pricing.put_cost(size_mb);
        if let Some(obs) = &self.obs {
            obs.puts.inc();
            obs.bytes_in.add(value.len() as u64);
            obs.dollars.add(dollars);
        }
        let mut inner = self.inner.lock().expect("store lock");
        inner.bytes_in += value.len() as u64;
        inner.put_count += 1;
        inner.dollars += dollars;
        inner.objects.insert(key.to_owned(), value);
        Ok(OpReceipt {
            duration_s,
            dollars,
        })
    }

    /// Fetches the object under `key`, returning it with the receipt.
    pub fn get(&self, key: &str) -> Result<(Bytes, OpReceipt), StoreError> {
        let mut inner = self.inner.lock().expect("store lock");
        let value = inner
            .objects
            .get(key)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(key.to_owned()))?;
        let size_mb = value.len() as f64 / (1024.0 * 1024.0);
        let duration_s = self.spec.transfer_time(size_mb);
        let dollars = self.spec.pricing.get_cost(size_mb);
        inner.bytes_out += value.len() as u64;
        inner.get_count += 1;
        inner.dollars += dollars;
        drop(inner);
        if let Some(obs) = &self.obs {
            obs.gets.inc();
            obs.bytes_out.add(value.len() as u64);
            obs.dollars.add(dollars);
        }
        Ok((
            value,
            OpReceipt {
                duration_s,
                dollars,
            },
        ))
    }

    /// Server-side GET: reads an object *inside* the storage node, with
    /// no network transfer and no request billing. Only meaningful for
    /// services that can aggregate locally (VM-PS); modelling code uses
    /// it for the parameter server's own reads during aggregation.
    ///
    /// # Panics
    /// Panics if the service cannot aggregate locally.
    pub fn get_server_side(&self, key: &str) -> Result<(Bytes, OpReceipt), StoreError> {
        assert!(
            self.spec.aggregates_locally,
            "{} cannot execute server-side operations",
            self.spec.kind
        );
        let inner = self.inner.lock().expect("store lock");
        let value = inner
            .objects
            .get(key)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(key.to_owned()))?;
        Ok((
            value,
            OpReceipt {
                duration_s: 0.0,
                dollars: 0.0,
            },
        ))
    }

    /// Server-side PUT: the aggregation counterpart of
    /// [`Self::get_server_side`].
    ///
    /// # Panics
    /// Panics if the service cannot aggregate locally.
    pub fn put_server_side(&self, key: &str, value: Bytes) -> Result<OpReceipt, StoreError> {
        assert!(
            self.spec.aggregates_locally,
            "{} cannot execute server-side operations",
            self.spec.kind
        );
        let mut inner = self.inner.lock().expect("store lock");
        inner.objects.insert(key.to_owned(), value);
        Ok(OpReceipt {
            duration_s: 0.0,
            dollars: 0.0,
        })
    }

    /// Removes the object under `key` if present.
    pub fn delete(&self, key: &str) -> bool {
        self.inner
            .lock()
            .expect("store lock")
            .objects
            .remove(key)
            .is_some()
    }

    /// Whether an object exists under `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.inner
            .lock()
            .expect("store lock")
            .objects
            .contains_key(key)
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("store lock").objects.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Usage counters accumulated since creation.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("store lock");
        StoreStats {
            puts: inner.put_count,
            gets: inner.get_count,
            bytes_in: inner.bytes_in,
            bytes_out: inner.bytes_out,
            request_dollars: inner.dollars,
        }
    }

    /// Drops all objects but keeps usage counters (end-of-epoch cleanup).
    pub fn clear_objects(&self) {
        self.inner.lock().expect("store lock").objects.clear();
    }
}

/// Serializes a gradient/model vector of `f32` into bytes for the store.
pub fn encode_vector(values: &[f32]) -> Bytes {
    let mut buf = Vec::with_capacity(values.len() * 4);
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(buf)
}

/// Deserializes a vector previously encoded with [`encode_vector`].
///
/// # Panics
/// Panics if the byte length is not a multiple of 4.
pub fn decode_vector(bytes: &Bytes) -> Vec<f32> {
    assert!(bytes.len().is_multiple_of(4), "corrupt vector blob");
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::StorageCatalog;
    use crate::service::StorageKind;

    fn store(kind: StorageKind) -> SimStore {
        SimStore::new(StorageCatalog::aws_default().get(kind).unwrap().clone())
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store(StorageKind::S3);
        let blob = Bytes::from(vec![1u8, 2, 3, 4]);
        let put = s.put("k", blob.clone()).unwrap();
        assert!(put.duration_s > 0.0);
        let (got, receipt) = s.get("k").unwrap();
        assert_eq!(got, blob);
        assert!(receipt.duration_s > 0.0);
        assert!(s.contains("k"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn get_missing_key_errors() {
        let s = store(StorageKind::S3);
        match s.get("missing") {
            Err(StoreError::NotFound(k)) => assert_eq!(k, "missing"),
            other => panic!("expected NotFound, got {other:?}"),
        }
    }

    #[test]
    fn dynamodb_rejects_oversized_objects() {
        let s = store(StorageKind::DynamoDb);
        // 1 MB > 400 KB limit.
        let blob = Bytes::from(vec![0u8; 1024 * 1024]);
        assert!(matches!(
            s.put("model", blob),
            Err(StoreError::ObjectTooLarge { .. })
        ));
        // Small object is fine.
        let small = Bytes::from(vec![0u8; 1024]);
        assert!(s.put("model", small).is_ok());
    }

    #[test]
    fn stats_track_operations() {
        let s = store(StorageKind::S3);
        s.put("a", Bytes::from(vec![0u8; 100])).unwrap();
        s.put("b", Bytes::from(vec![0u8; 200])).unwrap();
        s.get("a").unwrap();
        let stats = s.stats();
        assert_eq!(stats.puts, 2);
        assert_eq!(stats.gets, 1);
        assert_eq!(stats.bytes_in, 300);
        assert_eq!(stats.bytes_out, 100);
        assert!(stats.request_dollars > 0.0);
    }

    #[test]
    fn runtime_priced_store_bills_zero_per_request() {
        let s = store(StorageKind::VmPs);
        s.put("a", Bytes::from(vec![0u8; 1024])).unwrap();
        s.get("a").unwrap();
        assert_eq!(s.stats().request_dollars, 0.0);
    }

    #[test]
    fn delete_and_clear() {
        let s = store(StorageKind::S3);
        s.put("a", Bytes::from(vec![1u8])).unwrap();
        assert!(s.delete("a"));
        assert!(!s.delete("a"));
        s.put("b", Bytes::from(vec![1u8])).unwrap();
        s.clear_objects();
        assert!(s.is_empty());
        // Counters survive the clear.
        assert_eq!(s.stats().puts, 2);
    }

    #[test]
    fn vector_encoding_roundtrips() {
        let v = vec![1.5f32, -2.25, 0.0, 1e-7, 3.4e38];
        let blob = encode_vector(&v);
        assert_eq!(blob.len(), v.len() * 4);
        assert_eq!(decode_vector(&blob), v);
    }

    #[test]
    fn empty_vector_roundtrips() {
        let blob = encode_vector(&[]);
        assert!(decode_vector(&blob).is_empty());
    }

    #[test]
    fn faster_service_has_shorter_op_duration() {
        let s3 = store(StorageKind::S3);
        let vm = store(StorageKind::VmPs);
        let blob = Bytes::from(vec![0u8; 12 * 1024 * 1024]); // 12 MB model
        let t_s3 = s3.put("m", blob.clone()).unwrap().duration_s;
        let t_vm = vm.put("m", blob).unwrap().duration_s;
        assert!(t_vm < t_s3);
    }

    #[test]
    fn server_side_ops_are_free_on_vmps() {
        let s = store(StorageKind::VmPs);
        s.put("g", Bytes::from(vec![1u8, 2, 3, 4])).unwrap();
        let before = s.stats();
        let (blob, r) = s.get_server_side("g").unwrap();
        assert_eq!(blob.len(), 4);
        assert_eq!(r.duration_s, 0.0);
        assert_eq!(r.dollars, 0.0);
        let r = s.put_server_side("m", Bytes::from(vec![9u8])).unwrap();
        assert_eq!(r.duration_s, 0.0);
        // Server-side traffic is not billed and not counted as requests.
        let after = s.stats();
        assert_eq!(after.puts, before.puts);
        assert_eq!(after.gets, before.gets);
        assert_eq!(after.request_dollars, before.request_dollars);
        // But the object is really there.
        assert!(s.contains("m"));
    }

    #[test]
    #[should_panic(expected = "server-side")]
    fn server_side_ops_rejected_on_stateless_storage() {
        let s = store(StorageKind::S3);
        let _ = s.put_server_side("m", Bytes::from(vec![1u8]));
    }

    #[test]
    fn server_side_get_missing_key_errors() {
        let s = store(StorageKind::VmPs);
        assert!(matches!(
            s.get_server_side("nope"),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let s = Arc::new(store(StorageKind::S3));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for j in 0..50 {
                        let key = format!("w{i}-{j}");
                        s.put(&key, Bytes::from(vec![0u8; 64])).unwrap();
                        s.get(&key).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.puts, 400);
        assert_eq!(stats.gets, 400);
        assert_eq!(s.len(), 400);
    }
}
