//! Function-instance lifecycle: warm pools with idle expiry, invocation
//! accounting, and execution-limit tracking.
//!
//! AWS Lambda keeps an invoked instance warm for a provider-determined
//! idle window (minutes), reuses it for subsequent invocations at the
//! same memory size, and enforces a hard per-invocation execution limit
//! (15 min). The pool models exactly that: [`InstancePool::acquire`]
//! reuses unexpired warm instances of the right size and cold-starts the
//! remainder; [`InstancePool::release`] returns them warm; invocations
//! that exceed the execution limit are *counted* (the simulator's
//! epochs are atomic, so the breach is surfaced as a diagnostic rather
//! than a mid-epoch kill).

use ce_sim_core::time::SimTime;
use serde::{Deserialize, Serialize};

/// Identifier of one function instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FunctionId(pub u64);

/// One warm (or executing) function instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionInstance {
    /// Stable identifier.
    pub id: FunctionId,
    /// Memory size the instance was provisioned with.
    pub memory_mb: u32,
    /// Completed invocations on this instance.
    pub invocations: u32,
    /// Total busy seconds across invocations.
    pub busy_s: f64,
    /// When the instance last finished work (idle-expiry anchor).
    pub idle_since: SimTime,
    /// Whether the instance is currently executing.
    pub executing: bool,
}

/// Aggregate pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Instances ever created (== cold starts).
    pub created: u64,
    /// Invocations served.
    pub invocations: u64,
    /// Warm reuses (invocations that did not cold start).
    pub warm_hits: u64,
    /// Instances reaped by idle expiry.
    pub expired: u64,
    /// Invocations that exceeded the execution limit.
    pub limit_breaches: u64,
}

/// A pool of function instances for one tenant.
#[derive(Debug, Clone)]
pub struct InstancePool {
    instances: Vec<FunctionInstance>,
    next_id: u64,
    /// Idle seconds after which a warm instance is reclaimed.
    pub idle_timeout_s: f64,
    /// Per-invocation execution limit (Lambda: 900 s).
    pub max_execution_s: f64,
    stats: PoolStats,
}

impl InstancePool {
    /// Creates a pool with Lambda-like defaults (10 min idle expiry,
    /// 15 min execution limit).
    pub fn new() -> Self {
        InstancePool {
            instances: Vec::new(),
            next_id: 0,
            idle_timeout_s: 600.0,
            max_execution_s: 900.0,
            stats: PoolStats::default(),
        }
    }

    /// Pool counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Currently warm (idle, unexpired as of `now`) instances at
    /// `memory_mb`.
    pub fn warm_count(&self, memory_mb: u32, now: SimTime) -> u32 {
        self.instances
            .iter()
            .filter(|i| {
                !i.executing
                    && i.memory_mb == memory_mb
                    && now - i.idle_since <= self.idle_timeout_s
            })
            .count() as u32
    }

    /// Reaps instances idle past the timeout as of `now`.
    pub fn reap(&mut self, now: SimTime) {
        let timeout = self.idle_timeout_s;
        let before = self.instances.len();
        self.instances
            .retain(|i| i.executing || now - i.idle_since <= timeout);
        self.stats.expired += (before - self.instances.len()) as u64;
    }

    /// Acquires `n` instances of `memory_mb` at time `now`, reusing warm
    /// ones first. Returns the acquired ids and how many cold-started.
    pub fn acquire(&mut self, n: u32, memory_mb: u32, now: SimTime) -> (Vec<FunctionId>, u32) {
        self.reap(now);
        let mut ids = Vec::with_capacity(n as usize);
        // Warm reuse, most-recently-used first (Lambda's observed policy).
        let mut warm: Vec<usize> = (0..self.instances.len())
            .filter(|&i| !self.instances[i].executing && self.instances[i].memory_mb == memory_mb)
            .collect();
        warm.sort_by(|&a, &b| {
            self.instances[b]
                .idle_since
                .cmp(&self.instances[a].idle_since)
        });
        for &idx in warm.iter().take(n as usize) {
            self.instances[idx].executing = true;
            ids.push(self.instances[idx].id);
            self.stats.warm_hits += 1;
        }
        let cold = n - ids.len() as u32;
        for _ in 0..cold {
            let id = FunctionId(self.next_id);
            self.next_id += 1;
            self.instances.push(FunctionInstance {
                id,
                memory_mb,
                invocations: 0,
                busy_s: 0.0,
                idle_since: now,
                executing: true,
            });
            ids.push(id);
            self.stats.created += 1;
        }
        self.stats.invocations += u64::from(n);
        (ids, cold)
    }

    /// Releases instances after an invocation of `busy_s` seconds ending
    /// at `now`.
    pub fn release(&mut self, ids: &[FunctionId], busy_s: f64, now: SimTime) {
        if busy_s > self.max_execution_s {
            self.stats.limit_breaches += ids.len() as u64;
        }
        for id in ids {
            let inst = self
                .instances
                .iter_mut()
                .find(|i| i.id == *id)
                .expect("released instance exists");
            assert!(inst.executing, "double release of {id:?}");
            inst.executing = false;
            inst.invocations += 1;
            inst.busy_s += busy_s;
            inst.idle_since = now;
        }
    }

    /// Provisions `n` warm instances at `memory_mb` without invoking
    /// them (AWS "provisioned concurrency" / the planner's pre-warming
    /// before a stage starts).
    pub fn prewarm(&mut self, n: u32, memory_mb: u32, now: SimTime) {
        for _ in 0..n {
            let id = FunctionId(self.next_id);
            self.next_id += 1;
            self.instances.push(FunctionInstance {
                id,
                memory_mb,
                invocations: 0,
                busy_s: 0.0,
                idle_since: now,
                executing: false,
            });
            self.stats.created += 1;
        }
    }

    /// Drops every idle instance immediately (tenant-side teardown).
    pub fn clear_idle(&mut self) {
        let before = self.instances.len();
        self.instances.retain(|i| i.executing);
        self.stats.expired += (before - self.instances.len()) as u64;
    }

    /// Number of live (warm or executing) instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the pool holds no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

impl Default for InstancePool {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn first_acquire_is_all_cold() {
        let mut pool = InstancePool::new();
        let (ids, cold) = pool.acquire(5, 1769, t(0.0));
        assert_eq!(ids.len(), 5);
        assert_eq!(cold, 5);
        assert_eq!(pool.stats().created, 5);
        assert_eq!(pool.stats().warm_hits, 0);
    }

    #[test]
    fn release_then_acquire_reuses_warm() {
        let mut pool = InstancePool::new();
        let (ids, _) = pool.acquire(5, 1769, t(0.0));
        pool.release(&ids, 10.0, t(10.0));
        let (ids2, cold) = pool.acquire(5, 1769, t(10.0));
        assert_eq!(cold, 0);
        assert_eq!(pool.stats().warm_hits, 5);
        // Same instances, reused.
        let mut a: Vec<u64> = ids.iter().map(|i| i.0).collect();
        let mut b: Vec<u64> = ids2.iter().map(|i| i.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn memory_size_partitions_the_pool() {
        let mut pool = InstancePool::new();
        let (ids, _) = pool.acquire(3, 1769, t(0.0));
        pool.release(&ids, 1.0, t(1.0));
        // Different memory: all cold.
        let (_, cold) = pool.acquire(3, 3538, t(1.0));
        assert_eq!(cold, 3);
        assert_eq!(pool.warm_count(1769, t(1.0)), 3);
    }

    #[test]
    fn idle_timeout_expires_instances() {
        let mut pool = InstancePool::new();
        let (ids, _) = pool.acquire(4, 1769, t(0.0));
        pool.release(&ids, 1.0, t(1.0));
        assert_eq!(pool.warm_count(1769, t(500.0)), 4);
        // Past the 600 s idle window: expired.
        assert_eq!(pool.warm_count(1769, t(700.0)), 0);
        let (_, cold) = pool.acquire(4, 1769, t(700.0));
        assert_eq!(cold, 4);
        assert_eq!(pool.stats().expired, 4);
    }

    #[test]
    fn partial_warm_pool_cold_starts_the_rest() {
        let mut pool = InstancePool::new();
        let (ids, _) = pool.acquire(3, 1769, t(0.0));
        pool.release(&ids, 1.0, t(1.0));
        let (ids2, cold) = pool.acquire(8, 1769, t(1.0));
        assert_eq!(ids2.len(), 8);
        assert_eq!(cold, 5);
    }

    #[test]
    fn execution_limit_breaches_are_counted() {
        let mut pool = InstancePool::new();
        let (ids, _) = pool.acquire(2, 1769, t(0.0));
        pool.release(&ids, 1200.0, t(1200.0));
        assert_eq!(pool.stats().limit_breaches, 2);
        // Within the limit: no breach.
        let (ids, _) = pool.acquire(2, 1769, t(1200.0));
        pool.release(&ids, 100.0, t(1300.0));
        assert_eq!(pool.stats().limit_breaches, 2);
    }

    #[test]
    fn busy_time_and_invocations_accumulate() {
        let mut pool = InstancePool::new();
        let (ids, _) = pool.acquire(1, 1769, t(0.0));
        pool.release(&ids, 5.0, t(5.0));
        let (ids, _) = pool.acquire(1, 1769, t(5.0));
        pool.release(&ids, 7.0, t(12.0));
        assert_eq!(pool.stats().invocations, 2);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut pool = InstancePool::new();
        let (ids, _) = pool.acquire(1, 1769, t(0.0));
        pool.release(&ids, 1.0, t(1.0));
        pool.release(&ids, 1.0, t(2.0));
    }

    #[test]
    fn clear_idle_keeps_executing_instances() {
        let mut pool = InstancePool::new();
        let (first, _) = pool.acquire(2, 1769, t(0.0));
        pool.release(&first, 1.0, t(1.0));
        let (_executing, _) = pool.acquire(1, 1769, t(1.0));
        pool.clear_idle();
        assert_eq!(pool.len(), 1);
        assert!(!pool.is_empty());
    }
}
