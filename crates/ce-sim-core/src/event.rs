//! Time-ordered event queue.
//!
//! The platform simulator (`ce-faas`) advances simulated time by popping
//! events in `(time, sequence)` order. Sequence numbers break ties in FIFO
//! order, which keeps simultaneous completions deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queue delivering items in non-decreasing time order; items
/// scheduled at equal times are delivered in insertion (FIFO) order.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first delivery.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty queue at t = 0 with room for `capacity` pending
    /// events before the heap reallocates. Large drivers (fleet
    /// simulations schedule one arrival per job up front) know their
    /// high-water mark in advance.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the delivery time of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time (causality violation).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {} < {}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        debug_assert!(delay >= 0.0, "negative delay {delay}");
        let at = self.now + delay.max(0.0);
        self.schedule_at(at, event);
    }

    /// Pops the next event, advancing the clock to its delivery time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Delivery time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Drains every remaining event in delivery order.
    pub fn drain_ordered(&mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(item) = self.pop() {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3.0), "c");
        q.schedule_at(SimTime::from_secs(1.0), "a");
        q.schedule_at(SimTime::from_secs(2.0), "b");
        let order: Vec<&str> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(2.5, ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (at, _) = q.pop().unwrap();
        assert_eq!(at.as_secs(), 2.5);
        assert_eq!(q.now().as_secs(), 2.5);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_in(1.0, "first");
        q.pop();
        q.schedule_in(1.0, "second");
        let (at, _) = q.pop().unwrap();
        assert_eq!(at.as_secs(), 2.0);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2.0), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_in(4.0, ());
        assert_eq!(q.peek_time().unwrap().as_secs(), 4.0);
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        for i in 0..4 {
            q.schedule_in(f64::from(4 - i), i);
        }
        let order: Vec<i32> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec![3, 2, 1, 0]);
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule_in(10.0, "late");
        q.schedule_in(1.0, "early");
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, "early");
        q.schedule_in(2.0, "mid"); // at t = 3.0 absolute
        let (t_mid, mid) = q.pop().unwrap();
        assert_eq!(mid, "mid");
        assert_eq!(t_mid.as_secs(), 3.0);
        let (_, last) = q.pop().unwrap();
        assert_eq!(last, "late");
    }
}
