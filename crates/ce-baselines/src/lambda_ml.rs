//! The LambdaML baseline \[14\].
//!
//! LambdaML allocates statically: one allocation chosen before the job
//! starts. For hyperparameter tuning that is the optimal uniform plan
//! (every stage, every trial the same). For model training it sizes the
//! job from the *offline sampling-based* epoch estimate — pre-train on a
//! small sample, extrapolate — whose ~40 % error is what makes LambdaML
//! "always result in violations in the constraints" in §IV-C.

use crate::statics::{optimal_static_plan, StaticError};
use ce_ml::curve::CurveParams;
use ce_models::Allocation;
use ce_pareto::Profile;
use ce_sim_core::rng::SimRng;
use ce_training::predict::OfflinePredictor;
use ce_training::TrainingObjective;
use ce_tuning::{Objective, PartitionPlan, ShaSpec};

/// The static LambdaML scheduler.
#[derive(Debug, Clone, Default)]
pub struct LambdaMlScheduler;

impl LambdaMlScheduler {
    /// Creates the scheduler (stateless).
    pub fn new() -> Self {
        LambdaMlScheduler
    }

    /// Static tuning plan: the optimal uniform allocation (no per-stage
    /// partitioning).
    pub fn tuning_plan(
        &self,
        profile: &Profile,
        sha: ShaSpec,
        objective: Objective,
        max_concurrency: u32,
    ) -> Result<PartitionPlan, StaticError> {
        optimal_static_plan(profile, sha, objective, max_concurrency)
    }

    /// Static training allocation from the offline epoch estimate: the
    /// fastest (resp. cheapest) allocation whose *predicted* total
    /// cost (resp. time) satisfies the constraint. The prediction error
    /// is the baseline's Achilles heel: the chosen allocation is sized
    /// for the wrong number of epochs and is never revisited.
    ///
    /// Also returns the (erroneous) offline epoch estimate so the caller
    /// can report prediction error.
    pub fn training_allocation(
        &self,
        profile: &Profile,
        objective: TrainingObjective,
        curve: &CurveParams,
        target_loss: f64,
        rng: &mut SimRng,
    ) -> Option<(Allocation, f64)> {
        let estimate = OfflinePredictor::new(*curve)
            .predict(target_loss, rng)
            .map(|p| p.total_epochs)
            // A sample run that never reaches the target forces a guess;
            // LambdaML falls back to the family mean.
            .or_else(|| curve.mean_epochs_to(target_loss))?;
        let estimate = estimate.max(1.0);
        let points = profile.points();
        let chosen = match objective {
            TrainingObjective::MinJctGivenBudget { budget } => points
                .iter()
                .filter(|p| estimate * p.cost_usd() <= budget)
                .min_by(|a, b| a.time_s().total_cmp(&b.time_s()))
                .or_else(|| {
                    points
                        .iter()
                        .min_by(|a, b| a.cost_usd().total_cmp(&b.cost_usd()))
                }),
            TrainingObjective::MinCostGivenQos { qos_s } => points
                .iter()
                .filter(|p| estimate * p.time_s() <= qos_s)
                .min_by(|a, b| a.cost_usd().total_cmp(&b.cost_usd()))
                .or_else(|| {
                    points
                        .iter()
                        .min_by(|a, b| a.time_s().total_cmp(&b.time_s()))
                }),
        }?;
        Some((chosen.alloc, estimate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_ml::curve::table4_target;
    use ce_ml::model::ModelFamily;
    use ce_models::{AllocationSpace, Environment, Workload};
    use ce_pareto::ParetoProfiler;
    use ce_storage::StorageKind;

    fn s3_profile(w: &Workload) -> Profile {
        let env = Environment::aws_default();
        ParetoProfiler::new(&env)
            .with_space(AllocationSpace::aws_default().with_only_storage(StorageKind::S3))
            .profile_workload(w)
    }

    #[test]
    fn tuning_plan_is_static() {
        let w = Workload::lr_higgs();
        let p = s3_profile(&w);
        let sha = ShaSpec::motivation_example();
        let budget = PartitionPlan::uniform(*p.cheapest().unwrap(), sha).cost() * 2.0;
        let plan = LambdaMlScheduler::new()
            .tuning_plan(
                &p,
                sha,
                Objective::MinJctGivenBudget {
                    budget,
                    qos_s: None,
                },
                3000,
            )
            .unwrap();
        let first = plan.stages[0].alloc;
        assert!(plan.stages.iter().all(|s| s.alloc == first));
        assert_eq!(first.storage, StorageKind::S3);
    }

    #[test]
    fn training_allocation_sized_by_offline_estimate() {
        let w = Workload::lr_higgs();
        let p = s3_profile(&w);
        let curve = CurveParams::for_workload(ModelFamily::LogisticRegression, "Higgs");
        let target = table4_target(ModelFamily::LogisticRegression, "Higgs");
        let mut rng = SimRng::new(5);
        let (alloc, estimate) = LambdaMlScheduler::new()
            .training_allocation(
                &p,
                TrainingObjective::MinJctGivenBudget { budget: 50.0 },
                &curve,
                target,
                &mut rng,
            )
            .unwrap();
        assert!(estimate > 0.0);
        // The chosen allocation's predicted cost fits the budget under
        // the (possibly wrong) estimate.
        let point = p.points().iter().find(|q| q.alloc == alloc).unwrap();
        assert!(estimate * point.cost_usd() <= 50.0 || point.cost_usd() <= 1e-3);
    }

    #[test]
    fn offline_estimates_vary_across_seeds() {
        let w = Workload::lr_higgs();
        let p = s3_profile(&w);
        let curve = CurveParams::for_workload(ModelFamily::LogisticRegression, "Higgs");
        let target = table4_target(ModelFamily::LogisticRegression, "Higgs");
        let estimates: Vec<f64> = (0..8)
            .map(|seed| {
                LambdaMlScheduler::new()
                    .training_allocation(
                        &p,
                        TrainingObjective::MinJctGivenBudget { budget: 50.0 },
                        &curve,
                        target,
                        &mut SimRng::new(seed),
                    )
                    .unwrap()
                    .1
            })
            .collect();
        let min = estimates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = estimates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max / min > 1.2, "offline estimates suspiciously stable");
    }
}
