//! The [`Deserialize`] trait, its error type, and impls for primitives and
//! std containers.

use crate::value::Value;
use std::fmt;

/// Deserialization error: a human-readable message naming what failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Convenience for "missing field" errors from derived impls.
    pub fn missing_field(type_name: &str, field: &str) -> Self {
        Error::custom(format!("missing field `{field}` for {type_name}"))
    }

    /// Convenience for type mismatches from derived impls.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error::custom(format!("expected {what}, got {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parses `value` into `Self`.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("bool", value))
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        f64::deserialize_value(value).map(|v| v as f32)
    }
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", value))?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", value))?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_de_uint!(u8, u16, u32, u64, usize);
impl_de_int!(i8, i16, i32, i64, isize);

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?;
        items.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        T::deserialize_value(value).map(Box::new)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::expected("2-element array", value))?;
        if items.len() != 2 {
            return Err(Error::expected("2-element array", value));
        }
        Ok((
            A::deserialize_value(&items[0])?,
            B::deserialize_value(&items[1])?,
        ))
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let map = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value))?;
        map.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let map = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value))?;
        map.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Deserialize for crate::value::Map {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .cloned()
            .ok_or_else(|| Error::expected("object", value))
    }
}
