//! Fault schedules: scripted windows plus seed-derived Poisson bursts, and
//! the compiled form the platform queries every epoch attempt.

use crate::fault::{BurstSpec, FaultKind, FaultWindow};
use crate::parse::{self, ChaosSpecError};
use ce_sim_core::SimRng;
use ce_storage::StorageKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default horizon for materialising Poisson bursts: one simulated week.
pub const DEFAULT_HORIZON_S: f64 = 7.0 * 24.0 * 3600.0;

/// A declarative fault schedule. Scripted windows are taken verbatim; burst
/// processes are materialised into windows deterministically at
/// [`FaultSchedule::compile`] time from a caller-supplied RNG stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    pub windows: Vec<FaultWindow>,
    pub bursts: Vec<BurstSpec>,
    /// Burst arrivals are generated on `[0, horizon_s)`.
    pub horizon_s: f64,
}

impl FaultSchedule {
    /// The empty schedule: injects nothing, compiles to a quiet timeline.
    pub fn none() -> Self {
        FaultSchedule {
            windows: Vec::new(),
            bursts: Vec::new(),
            horizon_s: DEFAULT_HORIZON_S,
        }
    }

    /// A schedule made of scripted windows only.
    pub fn scripted(windows: Vec<FaultWindow>) -> Self {
        FaultSchedule {
            windows,
            ..FaultSchedule::none()
        }
    }

    /// Parses the `;`-separated spec grammar (see the crate docs).
    pub fn parse(spec: &str) -> Result<Self, ChaosSpecError> {
        parse::parse(spec)
    }

    pub fn with_window(mut self, window: FaultWindow) -> Self {
        self.windows.push(window);
        self
    }

    pub fn with_burst(mut self, burst: BurstSpec) -> Self {
        self.bursts.push(burst);
        self
    }

    pub fn with_horizon(mut self, horizon_s: f64) -> Self {
        self.horizon_s = horizon_s;
        self
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty() && self.bursts.is_empty()
    }

    /// Materialises the schedule into a queryable timeline. Burst arrival
    /// times come from child streams of `rng` (`derive_idx("burst", i)`), so
    /// the compiled timeline depends only on the seed and the spec — never
    /// on how many draws the simulation has made elsewhere.
    pub fn compile(&self, rng: &SimRng) -> CompiledSchedule {
        let mut windows = self.windows.clone();
        for (i, burst) in self.bursts.iter().enumerate() {
            if burst.per_hour <= 0.0 || burst.duration_s <= 0.0 {
                continue;
            }
            let mut arrivals = rng.derive_idx("burst", i as u64);
            let rate_per_s = burst.per_hour / 3600.0;
            let mut t = 0.0_f64;
            loop {
                // Exponential inter-arrival via inverse CDF; uniform() is in
                // [0, 1), so 1 - u is in (0, 1] and the log is finite.
                t += -(1.0 - arrivals.uniform()).ln() / rate_per_s;
                if t >= self.horizon_s {
                    break;
                }
                windows.push(FaultWindow {
                    start_s: t,
                    end_s: t + burst.duration_s,
                    fault: burst.fault,
                });
            }
        }
        // Stable order by start time so window indices (used for one-shot
        // wave-kill firing) are deterministic.
        windows.sort_by(|a, b| {
            a.start_s
                .total_cmp(&b.start_s)
                .then(a.end_s.total_cmp(&b.end_s))
        });
        CompiledSchedule { windows }
    }
}

impl fmt::Display for FaultSchedule {
    /// Renders the schedule back into the `;`-separated spec grammar
    /// (windows first, then bursts; the empty schedule renders as the
    /// empty string). For any schedule whose values satisfy the grammar's
    /// range constraints — which includes everything [`FaultSchedule::parse`]
    /// accepts — `parse(schedule.to_string())` reconstructs the schedule.
    /// The burst horizon is not part of the grammar and is not rendered;
    /// parsed schedules always carry [`DEFAULT_HORIZON_S`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for w in &self.windows {
            if !first {
                f.write_str(";")?;
            }
            write!(f, "{w}")?;
            first = false;
        }
        for b in &self.bursts {
            if !first {
                f.write_str(";")?;
            }
            write!(f, "{b}")?;
            first = false;
        }
        Ok(())
    }
}

/// A materialised fault timeline: every burst resolved into concrete
/// windows, ready for point-in-time queries.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledSchedule {
    windows: Vec<FaultWindow>,
}

impl CompiledSchedule {
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// True when no window can ever inject anything (empty schedule or all
    /// severities zero). Attaching such a schedule must be a no-op.
    pub fn is_zero_fault(&self) -> bool {
        self.windows.iter().all(|w| w.fault.is_zero())
    }

    /// Aggregates every window containing `t_s` into the faults in force at
    /// that instant. Overlapping windows of the same kind take the worst
    /// severity (max rate/factor); outages take the latest end time.
    pub fn active_at(&self, t_s: f64) -> ActiveFaults {
        let mut active = ActiveFaults::quiet();
        for (idx, w) in self.windows.iter().enumerate() {
            if !w.contains(t_s) || w.fault.is_zero() {
                continue;
            }
            match w.fault {
                FaultKind::WorkerCrash { rate } => {
                    active.crash_rate = active.crash_rate.max(rate);
                }
                FaultKind::WaveKill { fraction } => {
                    active.wave_kills.push((idx, fraction));
                }
                FaultKind::ThrottleStorm { rate } => {
                    active.throttle_rate = active.throttle_rate.max(rate);
                }
                FaultKind::ColdStartSpike { factor } => {
                    active.cold_start_factor = active.cold_start_factor.max(factor);
                }
                FaultKind::StorageOutage { service } => {
                    let slot = &mut active.outage_until[kind_index(service)];
                    *slot = Some(slot.map_or(w.end_s, |cur: f64| cur.max(w.end_s)));
                }
                FaultKind::StorageDegrade { service, factor } => {
                    let slot = &mut active.degrade_factor[kind_index(service)];
                    *slot = slot.max(factor);
                }
            }
        }
        active
    }
}

/// The aggregate fault state at one instant of simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveFaults {
    /// Per-epoch-attempt probability of a fatal worker loss (max over windows).
    pub crash_rate: f64,
    /// Per-attempt probability the invocation wave is throttled.
    pub throttle_rate: f64,
    /// Multiplier on the cold-start mean (>= 1).
    pub cold_start_factor: f64,
    /// Open wave-kill windows as `(window index, fraction)`; the index lets
    /// the platform fire each window exactly once.
    wave_kills: Vec<(usize, f64)>,
    outage_until: [Option<f64>; StorageKind::ALL.len()],
    degrade_factor: [f64; StorageKind::ALL.len()],
}

impl ActiveFaults {
    pub fn quiet() -> Self {
        ActiveFaults {
            crash_rate: 0.0,
            throttle_rate: 0.0,
            cold_start_factor: 1.0,
            wave_kills: Vec::new(),
            outage_until: [None; StorageKind::ALL.len()],
            degrade_factor: [1.0; StorageKind::ALL.len()],
        }
    }

    /// True when nothing is in force: the platform may skip the fault stream
    /// entirely, guaranteeing draw-for-draw equality with a clean run.
    pub fn is_quiet(&self) -> bool {
        self.crash_rate <= 0.0
            && self.throttle_rate <= 0.0
            && self.cold_start_factor <= 1.0
            && self.wave_kills.is_empty()
            && self.outage_until.iter().all(Option::is_none)
            && self.degrade_factor.iter().all(|f| *f <= 1.0)
    }

    /// If `service` is down right now, the earliest time it comes back.
    pub fn outage_until(&self, service: StorageKind) -> Option<f64> {
        self.outage_until[kind_index(service)]
    }

    /// Latency/bandwidth degradation factor for `service` (1.0 = healthy).
    pub fn degrade_factor(&self, service: StorageKind) -> f64 {
        self.degrade_factor[kind_index(service)]
    }

    pub fn wave_kills(&self) -> &[(usize, f64)] {
        &self.wave_kills
    }
}

fn kind_index(kind: StorageKind) -> usize {
    StorageKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("StorageKind::ALL covers every variant")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_quiet_everywhere() {
        let c = FaultSchedule::none().compile(&SimRng::new(1));
        assert!(c.is_zero_fault());
        assert!(c.active_at(0.0).is_quiet());
        assert!(c.active_at(1e9).is_quiet());
    }

    #[test]
    fn zero_severity_windows_are_zero_fault() {
        let s = FaultSchedule::parse("crash:0@0..inf;coldspike:x1@0..inf").unwrap();
        let c = s.compile(&SimRng::new(1));
        assert!(c.is_zero_fault());
        assert!(c.active_at(5.0).is_quiet());
    }

    #[test]
    fn windows_are_half_open_and_aggregate_worst_case() {
        let s = FaultSchedule::parse("crash:0.1@0..100;crash:0.4@50..60;outage:s3@50..80").unwrap();
        let c = s.compile(&SimRng::new(1));
        assert_eq!(c.active_at(55.0).crash_rate, 0.4);
        assert_eq!(c.active_at(60.0).crash_rate, 0.1); // end is exclusive
        assert_eq!(c.active_at(55.0).outage_until(StorageKind::S3), Some(80.0));
        assert_eq!(c.active_at(80.0).outage_until(StorageKind::S3), None);
        assert!(c.active_at(100.0).is_quiet());
    }

    #[test]
    fn burst_materialisation_is_deterministic_per_seed() {
        let s = FaultSchedule::parse("throttle:0.8~6/hx60").unwrap();
        let a = s.compile(&SimRng::new(9));
        let b = s.compile(&SimRng::new(9));
        assert_eq!(a.windows(), b.windows());
        assert!(!a.windows().is_empty(), "6/h over a week must fire");
        let other = s.compile(&SimRng::new(10));
        assert_ne!(a.windows(), other.windows(), "seed must move arrivals");
        for w in a.windows() {
            assert!((w.end_s - w.start_s - 60.0).abs() < 1e-9);
        }
    }

    #[test]
    fn burst_rate_matches_poisson_mean() {
        let s = FaultSchedule::parse("crash:0.5~12/hx30")
            .unwrap()
            .with_horizon(100.0 * 3600.0);
        let c = s.compile(&SimRng::new(3));
        let n = c.windows().len() as f64;
        let expect = 12.0 * 100.0;
        assert!(
            (n - expect).abs() / expect < 0.15,
            "got {n} arrivals, expected ~{expect}"
        );
    }

    #[test]
    fn degrade_and_coldspike_report_factors() {
        let s = FaultSchedule::parse("degrade:elasticache:x4@0..10;coldspike:x5@0..10").unwrap();
        let c = s.compile(&SimRng::new(1));
        let a = c.active_at(5.0);
        assert_eq!(a.degrade_factor(StorageKind::ElastiCache), 4.0);
        assert_eq!(a.degrade_factor(StorageKind::S3), 1.0);
        assert_eq!(a.cold_start_factor, 5.0);
        assert!(!a.is_quiet());
    }

    #[test]
    fn wave_kill_windows_carry_their_index() {
        let s = FaultSchedule::parse("wave:0.5@10..20").unwrap();
        let c = s.compile(&SimRng::new(1));
        let a = c.active_at(15.0);
        assert_eq!(a.wave_kills(), &[(0, 0.5)]);
        assert!(c.active_at(25.0).wave_kills().is_empty());
    }
}
