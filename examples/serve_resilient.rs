//! Request-level resilience under chaos: ~10k requests ride a 4x
//! cold-start spike while 30% of dispatches crash mid-run, once per
//! resilience configuration. Prints the tail-latency-vs-cost table and
//! shows *which* mechanism pays for what:
//!
//! * Naive retry re-runs every crashed request — failures drop 1388 to
//!   696, but all 972 extra attempts are billed ($0.4256 to $0.4948)
//!   and the tail gets *worse* (p99 10485 to 11577 ms: a retry starts
//!   only after the slow attempt finishes).
//! * p95 hedging races a duplicate against the slow tail instead — 385
//!   of 703 hedges win — and Pareto-dominates naive retry on (p99, $):
//!   p99 8949 vs 11577 ms at $0.4714 vs $0.4948.
//! * During a full two-minute outage the circuit breaker converts the
//!   doomed retry storm into 4908 fast sheds and caps the bill at
//!   $0.1959 against $0.9402 for retry-without-breaker.
//!
//! (Numbers from seed 42 on this repo's pinned simulator; the example
//! asserts the qualitative ordering, not these exact values.)
//!
//! ```sh
//! cargo run --release --example serve_resilient
//! ```

use ce_scaling::chaos::FaultSchedule;
use ce_scaling::faas::keep_alive_by_name;
use ce_scaling::resilience::{BreakerSpec, HedgePolicy, ResilienceSpec, RetryPolicy};
use ce_scaling::serve::{autoscaler_by_name, ArrivalModel, ServeReport, ServeSim, ServeSpec};

const RPS: f64 = 40.0;
const DURATION_S: f64 = 240.0;
const SLO_MS: f64 = 800.0;
const SEED: u64 = 42;

/// Cold starts cost 4x for the whole run and 30% of dispatches crash
/// during the middle two minutes — flaky, but the service survives.
const FLAKY: &str = "coldspike:x4@0..inf;crash:0.3@20..140";

/// A hard outage: every dispatch crashes for two minutes mid-run.
const OUTAGE: &str = "coldspike:x4@0..inf;crash:1@60..180";

fn run(chaos: &str, name: &str, resilience: Option<ResilienceSpec>) -> (String, ServeReport) {
    let mut spec = ServeSpec::new(ArrivalModel::Poisson { rps: RPS }, DURATION_S, SEED)
        .with_slo_ms(SLO_MS)
        .with_chaos(FaultSchedule::parse(chaos).expect("valid chaos spec"));
    if let Some(res) = resilience {
        spec = spec.with_resilience(res);
    }
    let report = ServeSim::new(
        spec,
        autoscaler_by_name("prewarm").expect("known autoscaler"),
        keep_alive_by_name("fixed:60").expect("known keep-alive"),
    )
    .run();
    (name.to_string(), report)
}

fn retry_only() -> ResilienceSpec {
    ResilienceSpec {
        retry: Some(RetryPolicy::new(2)),
        ..ResilienceSpec::disabled()
    }
}

fn hedge_only() -> ResilienceSpec {
    ResilienceSpec {
        hedge: Some(HedgePolicy::P95),
        ..ResilienceSpec::disabled()
    }
}

fn print_table(rows: &[(String, ServeReport)]) {
    println!(
        "{:>14}  {:>6} {:>6} {:>7} {:>7} {:>7} {:>7}  {:>8} {:>8}",
        "config", "failed", "shed", "p99ms", "attempt", "retries", "hedges", "$total", "$/1M req"
    );
    for (name, r) in rows {
        println!(
            "{:>14}  {:>6} {:>6} {:>7.0} {:>7} {:>7} {:>7}  {:>8.4} {:>8.2}",
            name,
            r.failed,
            r.shed_breaker,
            r.p99_ms,
            r.attempts,
            r.retries,
            r.hedges,
            r.dollars,
            r.cost_per_million()
        );
    }
}

fn main() {
    println!(
        "flaky service: {RPS} rps Poisson for {DURATION_S:.0}s, 4x cold-start \
         spike, 30% crash window at t=20..140s (seed {SEED})\n"
    );
    let flaky = [
        run(FLAKY, "baseline", None),
        run(FLAKY, "retry x2", Some(retry_only())),
        run(FLAKY, "hedge p95", Some(hedge_only())),
    ];
    let requests = flaky[0].1.requests;
    assert!(
        flaky.iter().all(|(_, r)| r.requests == requests),
        "every arm must see the identical arrival schedule"
    );
    println!("{requests} requests per arm, identical across configurations\n");
    print_table(&flaky);

    let (_, baseline) = &flaky[0];
    let (_, retry) = &flaky[1];
    let (_, hedge) = &flaky[2];

    // Retry earns its keep on failures — and is billed for it honestly.
    assert!(
        retry.failed < baseline.failed && retry.dollars > baseline.dollars,
        "retry must cut failures ({} -> {}) at higher billed cost (${:.4} -> ${:.4})",
        baseline.failed,
        retry.failed,
        baseline.dollars,
        retry.dollars
    );

    // The headline: hedging beats naive retry on BOTH tail latency and
    // dollars. A retry only launches after the slow attempt resolves, so
    // it re-pays the full cold-start tail; a hedge races the tail with a
    // warm duplicate and cancels the loser.
    assert!(
        hedge.p99_ms < retry.p99_ms && hedge.dollars < retry.dollars,
        "hedge p95 must Pareto-dominate retry x2 on (p99, $): \
         p99 {:.0}ms vs {:.0}ms, ${:.4} vs ${:.4}",
        hedge.p99_ms,
        retry.p99_ms,
        hedge.dollars,
        retry.dollars
    );
    println!(
        "\nhedge p95 Pareto-dominates retry x2 on (p99, $): \
         p99 {:.0}ms vs {:.0}ms at ${:.4} vs ${:.4} \
         ({} hedges, {} won the race)\n",
        hedge.p99_ms, retry.p99_ms, hedge.dollars, retry.dollars, hedge.hedges, hedge.hedge_wins
    );

    println!("hard outage: same traffic, every dispatch crashes at t=60..180s\n");
    let breaker_spec = ResilienceSpec {
        breaker: Some(BreakerSpec::new(0.5)),
        ..retry_only()
    };
    let outage = [
        run(OUTAGE, "retry x2", Some(retry_only())),
        run(OUTAGE, "retry+breaker", Some(breaker_spec)),
    ];
    print_table(&outage);

    let (_, naive) = &outage[0];
    let (_, guarded) = &outage[1];
    assert!(
        guarded.shed_breaker > 0,
        "the breaker must open during a total crash storm"
    );
    assert!(
        guarded.dollars < naive.dollars && guarded.attempts < naive.attempts,
        "the breaker must cap spend during the outage: \
         ${:.4} / {} attempts vs ${:.4} / {} attempts without it",
        guarded.dollars,
        guarded.attempts,
        naive.dollars,
        naive.attempts
    );
    println!(
        "\nbreaker caps the outage bill: ${:.4} vs ${:.4} \
         ({} doomed dispatches shed instead of billed)",
        guarded.dollars, naive.dollars, guarded.shed_breaker
    );
}
