//! The serving run's aggregate outcome: request verdict counts, latency
//! quantiles, the cost decomposition, and the QoS-vs-cost frontier point
//! the (autoscaler, keep-alive) policy pair lands on.

use serde::{Deserialize, Serialize};

/// Aggregate outcome of one serving run.
///
/// Every request ends in exactly one verdict:
/// `completed` (within or over SLO), `failed` (instance crashed
/// mid-request, retries exhausted), `timed_out` (every attempt was
/// killed at the request deadline), `shed_throttled` (rejected by an
/// injected throttle storm), `shed_overload` (admission queue full),
/// `shed_outage` (a backing-store outage that outlasted the run),
/// `shed_breaker` (fast-shed by an open circuit breaker), or
/// `truncated` (still parked when the run ended, with no outage in
/// force).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Autoscaler display name.
    pub autoscaler: String,
    /// Keep-alive policy display name.
    pub keep_alive: String,
    /// Arrival model display name.
    pub arrivals: String,
    /// Requests that arrived.
    pub requests: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests lost to a mid-request instance crash.
    pub failed: u64,
    /// Requests whose every attempt was killed at the request timeout.
    #[serde(default)]
    pub timed_out: u64,
    /// Requests rejected by an injected throttle storm.
    pub shed_throttled: u64,
    /// Requests dropped because the admission queue was full.
    pub shed_overload: u64,
    /// Requests dropped because a backing-store outage outlasted the run.
    pub shed_outage: u64,
    /// Requests fast-shed by an open circuit breaker.
    #[serde(default)]
    pub shed_breaker: u64,
    /// Requests still parked (no outage in force) when the run ended.
    #[serde(default)]
    pub truncated: u64,
    /// Dispatched attempts that cold-started.
    pub cold_starts: u64,
    /// Dispatched attempts served by a warm instance.
    pub warm_starts: u64,
    /// Completed requests whose end-to-end latency broke the SLO.
    pub slo_violations: u64,
    /// Instances provisioned ahead of demand by the autoscaler.
    pub prewarmed: u64,
    /// Instances reclaimed by keep-alive expiry.
    pub expired: u64,
    /// Attempts dispatched (requests plus retries and hedges; every
    /// one pays the invocation fee).
    #[serde(default)]
    pub attempts: u64,
    /// Retry attempts scheduled by the resilience layer.
    #[serde(default)]
    pub retries: u64,
    /// Hedge attempts launched.
    #[serde(default)]
    pub hedges: u64,
    /// Requests settled by their hedge attempt finishing first.
    #[serde(default)]
    pub hedge_wins: u64,
    /// Attempts dispatched on the degraded (brownout) profile.
    #[serde(default)]
    pub degraded: u64,
    /// End-to-end latency quantiles over completed requests (ms).
    pub p50_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// GB-seconds of billed execution time.
    pub busy_gb_s: f64,
    /// GB-seconds of provisioned-but-idle (keep-warm) time.
    pub idle_gb_s: f64,
    /// Total spend: invocations + execution + keep-warm.
    pub dollars: f64,
    /// First arrival to last event (seconds).
    pub makespan_s: f64,
    /// The SLO the run was judged against (ms).
    pub slo_ms: f64,
}

impl ServeReport {
    /// Fraction of arrivals that did not get SLO-compliant service:
    /// over-SLO completions plus every failed or shed request. The
    /// y-axis of the QoS-violation-vs-cost frontier.
    pub fn violation_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        let bad = self.slo_violations
            + self.failed
            + self.timed_out
            + self.shed_throttled
            + self.shed_overload
            + self.shed_outage
            + self.shed_breaker
            + self.truncated;
        bad as f64 / self.requests as f64
    }

    /// Dollars per million requests (the x-axis of the frontier).
    pub fn cost_per_million(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.dollars / self.requests as f64 * 1e6
    }

    /// This run's point on the violation-vs-cost frontier.
    pub fn frontier_point(&self) -> (f64, f64) {
        (self.violation_rate(), self.cost_per_million())
    }

    /// Whether this run Pareto-dominates `other`: no worse on both the
    /// violation rate and $/1M requests, strictly better on one.
    pub fn dominates(&self, other: &ServeReport) -> bool {
        ce_cluster::dominates_point(self.frontier_point(), other.frontier_point())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(slo_violations: u64, dollars: f64) -> ServeReport {
        ServeReport {
            autoscaler: "target".into(),
            keep_alive: "adaptive".into(),
            arrivals: "poisson".into(),
            requests: 1000,
            completed: 990,
            failed: 4,
            timed_out: 0,
            shed_throttled: 3,
            shed_overload: 2,
            shed_outage: 1,
            shed_breaker: 0,
            truncated: 0,
            cold_starts: 10,
            warm_starts: 980,
            slo_violations,
            prewarmed: 5,
            expired: 5,
            attempts: 994,
            retries: 0,
            hedges: 0,
            hedge_wins: 0,
            degraded: 0,
            p50_ms: 250.0,
            p95_ms: 400.0,
            p99_ms: 900.0,
            busy_gb_s: 400.0,
            idle_gb_s: 100.0,
            dollars,
            makespan_s: 600.0,
            slo_ms: 500.0,
        }
    }

    #[test]
    fn violation_rate_counts_every_unserved_request() {
        let r = report(40, 1.0);
        // 40 over-SLO + 4 failed + 3 + 2 + 1 shed = 50 of 1000.
        assert!((r.violation_rate() - 0.05).abs() < 1e-12);
        assert!((r.cost_per_million() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn dominance_requires_strict_improvement_on_one_axis() {
        let base = report(40, 1.0);
        assert!(report(20, 1.0).dominates(&base), "better QoS, equal cost");
        assert!(report(40, 0.5).dominates(&base), "equal QoS, cheaper");
        assert!(!base.dominates(&base), "no strict edge");
        assert!(
            !report(20, 2.0).dominates(&base),
            "trade-off, not dominance"
        );
    }
}
