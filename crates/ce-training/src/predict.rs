//! Offline vs online epoch prediction (§II-C2, Fig. 4).
//!
//! **Offline (LambdaML-style sampling).** Before the job starts, pre-train
//! the model on a small data sample and extrapolate the epochs needed to
//! reach the target loss. Two error sources make this inaccurate
//! (~40 % average error in the paper's Fig. 4a):
//! the sample run is a *different stochastic realization* of SGD than the
//! real job (run-level rate variance), and the small sample biases the
//! convergence speed estimate.
//!
//! **Online.** Fit the actual run's observed losses after every epoch
//! ([`crate::fitter`]) and invert the fitted curve. The error falls as
//! history accumulates, to ~5 % (Fig. 4b).

use crate::fitter::{FittedCurve, LossCurveFitter};
use ce_ml::curve::{CurveParams, LossCurve};
use ce_sim_core::rng::SimRng;
use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// Result of an epoch prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochPrediction {
    /// Predicted *total* epochs from the start of training to the target.
    pub total_epochs: f64,
}

/// The sampling-based offline predictor.
#[derive(Debug, Clone)]
pub struct OfflinePredictor {
    params: CurveParams,
    /// Epochs of sample pre-training to observe (LambdaML pre-trains
    /// briefly on a subset).
    sample_epochs: u32,
    /// Lognormal sigma of the small-sample bias on the estimated rate.
    sample_bias: f64,
}

impl OfflinePredictor {
    /// Creates an offline predictor for a workload family.
    pub fn new(params: CurveParams) -> Self {
        OfflinePredictor {
            params,
            sample_epochs: 5,
            sample_bias: 0.25,
        }
    }

    /// Runs the sampling procedure and predicts the epochs to `target`.
    ///
    /// Returns `None` when the sample run suggests the target is
    /// unreachable.
    pub fn predict(&self, target: f64, rng: &mut SimRng) -> Option<EpochPrediction> {
        // The sample run is an independent realization (different shard,
        // different seed) of the same convergence family.
        let sample_rng = rng.derive("offline-sample");
        let mut sample = LossCurve::sample_optimal(&self.params, sample_rng);
        for _ in 0..self.sample_epochs {
            sample.next_epoch();
        }
        let fit = LossCurveFitter::new(self.params.initial).fit(sample.history())?;
        // Small-sample bias: pre-training on a subset systematically
        // misestimates the full-data convergence rate.
        let bias = rng.lognormal_jitter(self.sample_bias);
        let biased = FittedCurve {
            rate: fit.rate * bias,
            ..fit
        };
        biased
            .epochs_to(target)
            .map(|e| EpochPrediction { total_epochs: e })
    }
}

/// The online predictor: a fitter plus the observed history.
#[derive(Debug, Clone)]
pub struct OnlinePredictor {
    fitter: LossCurveFitter,
    history: Vec<f64>,
    /// Memoized refit, keyed by the history length it was computed at.
    /// The fit is a pure function of the history, and `observe` (the
    /// only mutation) grows the history, so a matching length means the
    /// cached curve is bit-identical to a fresh fit.
    fit_cache: Cell<Option<(usize, Option<FittedCurve>)>>,
}

impl OnlinePredictor {
    /// Creates an online predictor anchored at the initial loss.
    pub fn new(initial_loss: f64) -> Self {
        OnlinePredictor {
            fitter: LossCurveFitter::new(initial_loss),
            history: Vec::new(),
            fit_cache: Cell::new(None),
        }
    }

    /// Records one observed epoch loss. Invalidates the memoized fit.
    pub fn observe(&mut self, loss: f64) {
        self.history.push(loss);
        self.fit_cache.set(None);
    }

    /// Epochs observed so far.
    pub fn epochs_observed(&self) -> u32 {
        self.history.len() as u32
    }

    /// Latest fitted curve, if enough history has accumulated. Refits at
    /// most once per observed epoch: callers that consult the curve
    /// several times between observations hit the memo.
    pub fn fitted(&self) -> Option<FittedCurve> {
        if let Some((n, fit)) = self.fit_cache.get() {
            if n == self.history.len() {
                return fit;
            }
        }
        let fit = self.fitter.fit(&self.history);
        self.fit_cache.set(Some((self.history.len(), fit)));
        fit
    }

    /// Predicts the *total* epochs (from training start) to reach
    /// `target`. `None` before enough history, or if the fitted floor is
    /// above the target.
    pub fn predict(&self, target: f64) -> Option<EpochPrediction> {
        self.fitted()?
            .epochs_to(target)
            .map(|e| EpochPrediction { total_epochs: e })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_ml::curve::table4_target;
    use ce_ml::model::ModelFamily;

    fn params() -> CurveParams {
        CurveParams::for_workload(ModelFamily::LogisticRegression, "Higgs")
    }

    /// Reproduces the Fig. 4 comparison: offline error is several times
    /// the converged online error.
    #[test]
    fn offline_error_much_larger_than_online() {
        let params = params();
        let target = table4_target(ModelFamily::LogisticRegression, "Higgs");
        let mut offline_errs = Vec::new();
        let mut online_errs = Vec::new();
        for seed in 0..15 {
            let mut rng = SimRng::new(seed);
            let mut run = LossCurve::sample_optimal(&params, rng.derive("run"));
            let truth = f64::from(run.true_epochs_to(target).unwrap());

            if let Some(p) = OfflinePredictor::new(params).predict(target, &mut rng) {
                offline_errs.push((p.total_epochs - truth).abs() / truth);
            } else {
                offline_errs.push(1.0);
            }

            let mut online = OnlinePredictor::new(params.initial);
            for _ in 0..30 {
                online.observe(run.next_epoch());
            }
            let p = online.predict(target).expect("online prediction");
            online_errs.push((p.total_epochs - truth).abs() / truth);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let off = mean(&offline_errs);
        let on = mean(&online_errs);
        assert!(
            off > 2.0 * on,
            "offline {off:.3} should be ≫ online {on:.3}"
        );
        assert!(on < 0.12, "online error {on:.3}");
        assert!(off > 0.15, "offline error suspiciously small: {off:.3}");
    }

    #[test]
    fn online_needs_min_history() {
        let mut p = OnlinePredictor::new(1.0);
        assert!(p.predict(0.5).is_none());
        p.observe(0.9);
        p.observe(0.8);
        assert!(p.predict(0.5).is_none());
        p.observe(0.7);
        assert!(p.predict(0.5).is_some());
        assert_eq!(p.epochs_observed(), 3);
    }

    #[test]
    fn fit_memo_matches_fresh_fit_and_invalidates_on_observe() {
        let params = params();
        let mut run = LossCurve::sample_optimal(&params, SimRng::new(7));
        let mut p = OnlinePredictor::new(params.initial);
        for _ in 0..10 {
            p.observe(run.next_epoch());
        }
        let first = p.fitted().expect("fit");
        // Memo hit: same bits without refitting.
        let memo = p.fitted().expect("fit");
        assert_eq!(first.floor.to_bits(), memo.floor.to_bits());
        assert_eq!(first.rate.to_bits(), memo.rate.to_bits());
        // New observation invalidates; result equals a from-scratch fit
        // over the grown history.
        p.observe(run.next_epoch());
        let after = p.fitted().expect("fit");
        let mut fresh = OnlinePredictor::new(params.initial);
        for &l in run.history() {
            fresh.observe(l);
        }
        let oracle = fresh.fitted().expect("fit");
        assert_eq!(after.floor.to_bits(), oracle.floor.to_bits());
        assert_eq!(after.rate.to_bits(), oracle.rate.to_bits());
    }

    #[test]
    fn offline_prediction_is_seed_dependent() {
        let params = params();
        let a = OfflinePredictor::new(params)
            .predict(0.66, &mut SimRng::new(1))
            .unwrap();
        let b = OfflinePredictor::new(params)
            .predict(0.66, &mut SimRng::new(2))
            .unwrap();
        assert_ne!(a.total_epochs, b.total_epochs);
    }

    #[test]
    fn offline_prediction_deterministic_per_seed() {
        let params = params();
        let a = OfflinePredictor::new(params).predict(0.66, &mut SimRng::new(9));
        let b = OfflinePredictor::new(params).predict(0.66, &mut SimRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn unreachable_target_offline_none_or_large() {
        let params = params();
        // Target below the family floor is unreachable for any fit whose
        // floor is above it; the sampling fit may put the floor lower, so
        // accept either None or a huge estimate.
        let pred = OfflinePredictor::new(params).predict(params.floor - 0.05, &mut SimRng::new(3));
        if let Some(p) = pred {
            assert!(p.total_epochs > 100.0);
        }
    }
}
