//! The resource allocation `θ = (n, m, s)` and the space `Θ` (Eq. 1).

use ce_storage::{StorageCatalog, StorageKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One resource allocation for an epoch: the number of functions `n`, the
/// per-function memory `m` (MB), and the external storage service `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Allocation {
    /// Number of provisioned functions (`n`).
    pub n: u32,
    /// Memory per function in MB (`m`).
    pub memory_mb: u32,
    /// Attached external storage service (`s`).
    pub storage: StorageKind,
}

impl Allocation {
    /// Convenience constructor.
    pub fn new(n: u32, memory_mb: u32, storage: StorageKind) -> Self {
        assert!(n >= 1, "at least one function");
        assert!(memory_mb >= 128, "Lambda minimum memory is 128 MB");
        Allocation {
            n,
            memory_mb,
            storage,
        }
    }

    /// Total memory across all functions, in GB (the "resource volume"
    /// Fig. 11 normalizes by).
    pub fn total_gb(&self) -> f64 {
        f64::from(self.n) * f64::from(self.memory_mb) / 1024.0
    }
}

impl fmt::Display for Allocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}fn × {}MB / {}", self.n, self.memory_mb, self.storage)
    }
}

/// The allocation search space `Θ = {(n, m, s)}` of Eq. 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocationSpace {
    /// Candidate function counts (`N`), ascending.
    pub function_counts: Vec<u32>,
    /// Candidate memory sizes in MB (`M`), ascending.
    pub memory_sizes: Vec<u32>,
    /// Candidate storage services (`S`).
    pub storages: Vec<StorageKind>,
}

impl AllocationSpace {
    /// The default grid used throughout the evaluation: function counts to
    /// 200, Lambda memory steps from 512 MB to the 10 240 MB cap, and all
    /// four storage services.
    pub fn aws_default() -> Self {
        AllocationSpace {
            function_counts: vec![1, 2, 4, 8, 10, 16, 25, 32, 50, 64, 100, 128, 200],
            memory_sizes: vec![
                512, 768, 1024, 1280, 1536, 1769, 2048, 2560, 3072, 3538, 4096, 5120, 6144, 7168,
                8192, 10240,
            ],
            storages: StorageKind::ALL.to_vec(),
        }
    }

    /// A coarser grid for fast tests.
    pub fn small() -> Self {
        AllocationSpace {
            function_counts: vec![1, 4, 10, 50],
            memory_sizes: vec![512, 1769, 3538],
            storages: StorageKind::ALL.to_vec(),
        }
    }

    /// Restricts the space to a single storage service (Figs. 16–18).
    pub fn with_only_storage(mut self, kind: StorageKind) -> Self {
        self.storages = vec![kind];
        self
    }

    /// Drops function counts above `limit` — the grid a job sees when an
    /// account-level concurrency quota caps its waves. Always keeps at
    /// least the narrowest count so the space stays non-empty.
    pub fn with_max_concurrency(mut self, limit: u32) -> Self {
        let narrowest = self.function_counts.first().copied();
        self.function_counts.retain(|&n| n <= limit);
        if self.function_counts.is_empty() {
            self.function_counts.extend(narrowest);
        }
        self
    }

    /// Enumerates every allocation in the space that is *feasible* for a
    /// job needing at least `min_memory_mb` per function and a model blob
    /// of `model_mb` (DynamoDB's item limit filters large models, and the
    /// catalog decides which services exist).
    pub fn enumerate(
        &self,
        catalog: &StorageCatalog,
        min_memory_mb: u32,
        model_mb: f64,
    ) -> Vec<Allocation> {
        let mut out = Vec::new();
        for &s in &self.storages {
            let Some(spec) = catalog.get(s) else { continue };
            if !spec.supports_model(model_mb) {
                continue;
            }
            for &n in &self.function_counts {
                for &m in &self.memory_sizes {
                    if m >= min_memory_mb {
                        out.push(Allocation::new(n, m, s));
                    }
                }
            }
        }
        out
    }

    /// Total size of the unfiltered grid `|N| · |M| · |S|`.
    pub fn cardinality(&self) -> usize {
        self.function_counts.len() * self.memory_sizes.len() * self.storages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let a = Allocation::new(10, 1769, StorageKind::S3);
        assert_eq!(a.to_string(), "10fn × 1769MB / S3");
    }

    #[test]
    fn max_concurrency_caps_function_counts() {
        let space = AllocationSpace::aws_default().with_max_concurrency(60);
        assert!(space.function_counts.iter().all(|&n| n <= 60));
        assert!(space.function_counts.contains(&50));
        // A quota below every count keeps the narrowest option.
        let tiny = AllocationSpace::aws_default().with_max_concurrency(0);
        assert_eq!(tiny.function_counts, vec![1]);
    }

    #[test]
    fn total_gb() {
        let a = Allocation::new(10, 1024, StorageKind::S3);
        assert!((a.total_gb() - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_functions_rejected() {
        Allocation::new(0, 1024, StorageKind::S3);
    }

    #[test]
    #[should_panic(expected = "minimum memory")]
    fn tiny_memory_rejected() {
        Allocation::new(1, 64, StorageKind::S3);
    }

    #[test]
    fn default_space_cardinality() {
        let space = AllocationSpace::aws_default();
        assert_eq!(space.cardinality(), 13 * 16 * 4);
    }

    #[test]
    fn enumerate_respects_memory_floor() {
        let space = AllocationSpace::small();
        let cat = StorageCatalog::aws_default();
        let allocs = space.enumerate(&cat, 1769, 0.0001);
        assert!(!allocs.is_empty());
        assert!(allocs.iter().all(|a| a.memory_mb >= 1769));
    }

    #[test]
    fn enumerate_filters_dynamodb_for_large_models() {
        let space = AllocationSpace::small();
        let cat = StorageCatalog::aws_default();
        // 12 MB MobileNet blob exceeds DynamoDB's 400 KB item limit.
        let allocs = space.enumerate(&cat, 512, 12.0);
        assert!(allocs.iter().all(|a| a.storage != StorageKind::DynamoDb));
        // A tiny LR blob keeps DynamoDB in the space.
        let allocs = space.enumerate(&cat, 512, 0.0001);
        assert!(allocs.iter().any(|a| a.storage == StorageKind::DynamoDb));
    }

    #[test]
    fn with_only_storage_restricts() {
        let space = AllocationSpace::small().with_only_storage(StorageKind::VmPs);
        let cat = StorageCatalog::aws_default();
        let allocs = space.enumerate(&cat, 512, 12.0);
        assert!(!allocs.is_empty());
        assert!(allocs.iter().all(|a| a.storage == StorageKind::VmPs));
    }

    #[test]
    fn enumerate_excludes_missing_catalog_services() {
        let space = AllocationSpace::small();
        let cat = StorageCatalog::aws_default().only(StorageKind::S3);
        let allocs = space.enumerate(&cat, 512, 0.001);
        assert!(allocs.iter().all(|a| a.storage == StorageKind::S3));
    }
}
