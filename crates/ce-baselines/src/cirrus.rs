//! The Cirrus baseline \[4\].
//!
//! Cirrus runs serverless ML with an EC2 VM parameter server as the
//! intermediate store, so its profile is always VM-PS-pinned. Allocation
//! is static. For the §IV-C training comparison the paper *modifies*
//! Cirrus to use the same online prediction as CE-scaling; the modified
//! variant adjusts at runtime but keeps Cirrus's two handicaps: VM-PS
//! whether or not it is the right storage, and eager (non-overlapped)
//! function restarts.

use crate::statics::{optimal_static_plan, StaticError};
use ce_models::Allocation;
use ce_pareto::Profile;
use ce_training::{AdaptiveScheduler, SchedulerConfig, TrainingObjective};
use ce_tuning::{Objective, PartitionPlan, ShaSpec};

/// The Cirrus scheduler.
#[derive(Debug, Clone, Default)]
pub struct CirrusScheduler;

impl CirrusScheduler {
    /// Creates the scheduler (stateless).
    pub fn new() -> Self {
        CirrusScheduler
    }

    /// Static tuning plan over a VM-PS-pinned profile.
    pub fn tuning_plan(
        &self,
        vmps_profile: &Profile,
        sha: ShaSpec,
        objective: Objective,
        max_concurrency: u32,
    ) -> Result<PartitionPlan, StaticError> {
        optimal_static_plan(vmps_profile, sha, objective, max_concurrency)
    }

    /// The "modified Cirrus" online training scheduler: CE-scaling's
    /// Algorithm 2 machinery, but on the VM-PS-pinned profile with eager
    /// restarts (no Fig. 8 overlap).
    pub fn online_training_scheduler(
        &self,
        vmps_profile: &Profile,
        objective: TrainingObjective,
        target_loss: f64,
        initial_loss: f64,
    ) -> AdaptiveScheduler {
        AdaptiveScheduler::new(
            vmps_profile,
            objective,
            target_loss,
            initial_loss,
            SchedulerConfig {
                delayed_restart: false,
                ..SchedulerConfig::default()
            },
        )
    }

    /// Static training allocation (unmodified Cirrus): the best VM-PS
    /// allocation under the mean epoch estimate.
    pub fn static_training_allocation(
        &self,
        vmps_profile: &Profile,
        objective: TrainingObjective,
        estimated_epochs: f64,
    ) -> Option<Allocation> {
        let points = vmps_profile.points();
        match objective {
            TrainingObjective::MinJctGivenBudget { budget } => points
                .iter()
                .filter(|p| estimated_epochs * p.cost_usd() <= budget)
                .min_by(|a, b| a.time_s().total_cmp(&b.time_s()))
                .or_else(|| {
                    points
                        .iter()
                        .min_by(|a, b| a.cost_usd().total_cmp(&b.cost_usd()))
                }),
            TrainingObjective::MinCostGivenQos { qos_s } => points
                .iter()
                .filter(|p| estimated_epochs * p.time_s() <= qos_s)
                .min_by(|a, b| a.cost_usd().total_cmp(&b.cost_usd()))
                .or_else(|| {
                    points
                        .iter()
                        .min_by(|a, b| a.time_s().total_cmp(&b.time_s()))
                }),
        }
        .map(|p| p.alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_models::{AllocationSpace, Environment, Workload};
    use ce_pareto::ParetoProfiler;
    use ce_storage::StorageKind;

    fn vmps_profile(w: &Workload) -> Profile {
        let env = Environment::aws_default();
        ParetoProfiler::new(&env)
            .with_space(AllocationSpace::aws_default().with_only_storage(StorageKind::VmPs))
            .profile_workload(w)
    }

    #[test]
    fn all_cirrus_allocations_use_vmps() {
        let w = Workload::mobilenet_cifar10();
        let p = vmps_profile(&w);
        let sha = ShaSpec::motivation_example();
        let budget = PartitionPlan::uniform(*p.cheapest().unwrap(), sha).cost() * 2.0;
        let plan = CirrusScheduler::new()
            .tuning_plan(
                &p,
                sha,
                Objective::MinJctGivenBudget {
                    budget,
                    qos_s: None,
                },
                3000,
            )
            .unwrap();
        assert!(plan
            .stages
            .iter()
            .all(|s| s.alloc.storage == StorageKind::VmPs));
    }

    #[test]
    fn modified_cirrus_uses_eager_restarts() {
        let w = Workload::mobilenet_cifar10();
        let p = vmps_profile(&w);
        let sched = CirrusScheduler::new().online_training_scheduler(
            &p,
            TrainingObjective::MinJctGivenBudget { budget: 100.0 },
            0.2,
            2.3,
        );
        assert!(!sched.delayed_restart());
    }

    #[test]
    fn static_training_allocation_fits_estimate() {
        let w = Workload::mobilenet_cifar10();
        let p = vmps_profile(&w);
        let alloc = CirrusScheduler::new()
            .static_training_allocation(
                &p,
                TrainingObjective::MinJctGivenBudget { budget: 50.0 },
                40.0,
            )
            .unwrap();
        assert_eq!(alloc.storage, StorageKind::VmPs);
        let point = p.points().iter().find(|q| q.alloc == alloc).unwrap();
        assert!(40.0 * point.cost_usd() <= 50.0);
    }
}
