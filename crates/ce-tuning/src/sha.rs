//! Successive Halving (SHA) bracket arithmetic.
//!
//! A bracket starts with `initial_trials` hyperparameter configurations.
//! Every stage trains each surviving trial for `epochs_per_stage` epochs,
//! evaluates, and keeps the best `1/reduction_factor` fraction. The
//! bracket ends when one winner remains after the final stage of
//! `reduction_factor` trials (Fig. 2 shows 32 → 16 → 8 → 4 → 2 over five
//! stages with factor 2; the evaluation uses 16 384 trials over 14
//! stages).

use serde::{Deserialize, Serialize};

/// An SHA bracket specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShaSpec {
    /// Trials in the first stage (`q_1`); must be a power of the
    /// reduction factor.
    pub initial_trials: u32,
    /// Survivor fraction denominator between stages (usually 2).
    pub reduction_factor: u32,
    /// Epochs each surviving trial trains per stage (`r_i`, constant).
    pub epochs_per_stage: u32,
}

impl ShaSpec {
    /// The evaluation's bracket: 16 384 trials, factor 2, 2 epochs/stage,
    /// 14 stages (§IV-B).
    pub fn paper_default() -> Self {
        ShaSpec::new(16_384, 2, 2)
    }

    /// The motivation example's bracket (Fig. 2/3): 32 trials, factor 2.
    pub fn motivation_example() -> Self {
        ShaSpec::new(32, 2, 2)
    }

    /// Creates a bracket.
    ///
    /// # Panics
    /// Panics unless `initial_trials` is a power of `reduction_factor`
    /// (≥ the factor itself) and all fields are positive.
    pub fn new(initial_trials: u32, reduction_factor: u32, epochs_per_stage: u32) -> Self {
        assert!(reduction_factor >= 2, "reduction factor must be ≥ 2");
        assert!(epochs_per_stage >= 1);
        assert!(
            initial_trials >= reduction_factor,
            "need at least one reduction"
        );
        let mut q = initial_trials;
        while q > 1 {
            assert!(
                q.is_multiple_of(reduction_factor),
                "initial_trials must be a power of the reduction factor"
            );
            q /= reduction_factor;
        }
        ShaSpec {
            initial_trials,
            reduction_factor,
            epochs_per_stage,
        }
    }

    /// Number of stages `d` (the bracket stops after evaluating the stage
    /// with `reduction_factor` trials).
    pub fn num_stages(&self) -> usize {
        let mut stages = 0;
        let mut q = self.initial_trials;
        while q >= self.reduction_factor {
            stages += 1;
            q /= self.reduction_factor;
        }
        stages
    }

    /// Trials alive in stage `i` (0-based): `q_{i+1} = q_1 / rf^i`.
    pub fn trials_in_stage(&self, stage: usize) -> u32 {
        assert!(stage < self.num_stages(), "stage {stage} out of range");
        self.initial_trials / self.reduction_factor.pow(stage as u32)
    }

    /// All per-stage trial counts `q_1 .. q_d`.
    pub fn stage_trials(&self) -> Vec<u32> {
        (0..self.num_stages())
            .map(|i| self.trials_in_stage(i))
            .collect()
    }

    /// Survivors after stage `i`: `q_i / rf` (1 after the last stage).
    pub fn survivors_of_stage(&self, stage: usize) -> u32 {
        (self.trials_in_stage(stage) / self.reduction_factor).max(1)
    }

    /// Total trial-epochs across the bracket, `Σ q_i · r_i` — the work a
    /// *static* allocation spreads uniformly.
    pub fn total_trial_epochs(&self) -> u64 {
        self.stage_trials()
            .iter()
            .map(|&q| u64::from(q) * u64::from(self.epochs_per_stage))
            .sum()
    }

    /// Selects the survivor indices after a stage: the `survivors` trials
    /// with the *lowest* observed loss, in stable order.
    pub fn select_survivors(losses: &[f64], survivors: usize) -> Vec<usize> {
        assert!(survivors <= losses.len());
        let mut idx: Vec<usize> = (0..losses.len()).collect();
        idx.sort_by(|&a, &b| losses[a].total_cmp(&losses[b]).then(a.cmp(&b)));
        let mut keep = idx[..survivors].to_vec();
        keep.sort_unstable();
        keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bracket_has_14_stages() {
        let s = ShaSpec::paper_default();
        assert_eq!(s.num_stages(), 14);
        assert_eq!(s.trials_in_stage(0), 16_384);
        assert_eq!(s.trials_in_stage(13), 2);
    }

    #[test]
    fn motivation_bracket_matches_fig2() {
        let s = ShaSpec::motivation_example();
        assert_eq!(s.num_stages(), 5);
        assert_eq!(s.stage_trials(), vec![32, 16, 8, 4, 2]);
    }

    #[test]
    fn survivors_halve() {
        let s = ShaSpec::motivation_example();
        assert_eq!(s.survivors_of_stage(0), 16);
        assert_eq!(s.survivors_of_stage(4), 1);
    }

    #[test]
    fn total_trial_epochs_sums_stages() {
        let s = ShaSpec::motivation_example();
        // (32+16+8+4+2) × 2 epochs = 124.
        assert_eq!(s.total_trial_epochs(), 124);
    }

    #[test]
    #[should_panic(expected = "power of the reduction factor")]
    fn non_power_rejected() {
        ShaSpec::new(48, 2, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stage_bounds_checked() {
        ShaSpec::motivation_example().trials_in_stage(5);
    }

    #[test]
    fn factor_three_brackets() {
        let s = ShaSpec::new(81, 3, 1);
        assert_eq!(s.num_stages(), 4);
        assert_eq!(s.stage_trials(), vec![81, 27, 9, 3]);
        assert_eq!(s.survivors_of_stage(3), 1);
    }

    #[test]
    fn select_survivors_keeps_lowest_losses() {
        let losses = [0.9, 0.1, 0.5, 0.2, 0.7];
        let keep = ShaSpec::select_survivors(&losses, 2);
        assert_eq!(keep, vec![1, 3]);
    }

    #[test]
    fn select_survivors_ties_are_stable() {
        let losses = [0.5, 0.5, 0.5];
        let keep = ShaSpec::select_survivors(&losses, 2);
        assert_eq!(keep, vec![0, 1]);
    }

    #[test]
    fn select_all_survivors_is_identity() {
        let losses = [0.3, 0.1, 0.2];
        assert_eq!(ShaSpec::select_survivors(&losses, 3), vec![0, 1, 2]);
    }
}
