//! The model zoo of §IV-A.
//!
//! Each [`ModelSpec`] carries what the analytical models need: the model
//! (parameter blob) size `M` exchanged at every synchronization, and the
//! compute intensity `u` — seconds to process 1 MB of training data on one
//! full vCPU (1769 MB of Lambda memory) — plus an Amdahl parallel fraction
//! describing how well gradient computation uses memory beyond one vCPU.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five model families evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// Linear classifier; parameter count equals the input feature count.
    LogisticRegression,
    /// Linear SVM with hinge loss; model size "several KB".
    Svm,
    /// MobileNet: lightweight CNN, 12 MB of parameters.
    MobileNet,
    /// ResNet50: 89 MB of parameters.
    ResNet50,
    /// BERT-base: 340 MB of parameters.
    BertBase,
}

impl fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelFamily::LogisticRegression => "LR",
            ModelFamily::Svm => "SVM",
            ModelFamily::MobileNet => "MobileNet",
            ModelFamily::ResNet50 => "ResNet50",
            ModelFamily::BertBase => "BERT-base",
        };
        f.write_str(s)
    }
}

/// A concrete model to train.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Which family this model belongs to.
    pub family: ModelFamily,
    /// Size `M` of the parameter blob exchanged at synchronization, in MB.
    pub model_mb: f64,
    /// Seconds to process 1 MB of training data on exactly one vCPU
    /// (`u(m)` of Eq. 2 evaluated at m = 1769 MB).
    pub compute_s_per_mb: f64,
    /// Amdahl parallel fraction of gradient computation: how much of the
    /// work can use vCPUs beyond the first when memory exceeds 1769 MB.
    pub parallel_fraction: f64,
}

impl ModelSpec {
    /// Logistic regression sized for the Higgs dataset (28 features;
    /// parameter count equals feature count, so the blob is tiny).
    pub fn logistic_regression() -> Self {
        ModelSpec {
            family: ModelFamily::LogisticRegression,
            model_mb: 28.0 * 4.0 / (1024.0 * 1024.0),
            compute_s_per_mb: 0.5,
            parallel_fraction: 0.70,
        }
    }

    /// Logistic regression sized for YFCC100M's 4096-dimension features.
    pub fn logistic_regression_yfcc() -> Self {
        ModelSpec {
            model_mb: 4096.0 * 4.0 / (1024.0 * 1024.0),
            ..ModelSpec::logistic_regression()
        }
    }

    /// Linear SVM ("several KB" of parameters — we use 4 KB).
    pub fn svm() -> Self {
        ModelSpec {
            family: ModelFamily::Svm,
            model_mb: 4.0 / 1024.0,
            compute_s_per_mb: 0.45,
            parallel_fraction: 0.70,
        }
    }

    /// Linear SVM sized for YFCC100M features.
    pub fn svm_yfcc() -> Self {
        ModelSpec {
            model_mb: 4096.0 * 4.0 / (1024.0 * 1024.0),
            ..ModelSpec::svm()
        }
    }

    /// MobileNet: 12 MB of parameters (paper §IV-A).
    pub fn mobilenet() -> Self {
        ModelSpec {
            family: ModelFamily::MobileNet,
            model_mb: 12.0,
            compute_s_per_mb: 60.0,
            parallel_fraction: 0.93,
        }
    }

    /// ResNet50: 89 MB of parameters.
    pub fn resnet50() -> Self {
        ModelSpec {
            family: ModelFamily::ResNet50,
            model_mb: 89.0,
            compute_s_per_mb: 400.0,
            parallel_fraction: 0.95,
        }
    }

    /// BERT-base: 340 MB of parameters.
    pub fn bert_base() -> Self {
        ModelSpec {
            family: ModelFamily::BertBase,
            model_mb: 340.0,
            compute_s_per_mb: 12_000.0,
            parallel_fraction: 0.96,
        }
    }

    /// All five paper models (with LR/SVM in their Higgs sizing).
    pub fn paper_zoo() -> Vec<ModelSpec> {
        vec![
            ModelSpec::logistic_regression(),
            ModelSpec::svm(),
            ModelSpec::mobilenet(),
            ModelSpec::resnet50(),
            ModelSpec::bert_base(),
        ]
    }

    /// Short display name (matches the paper's figure labels).
    pub fn name(&self) -> String {
        self.family.to_string()
    }

    /// Minimum Lambda memory (MB) a worker needs: space for the runtime,
    /// the model (held twice during aggregation), and a working set.
    pub fn min_memory_mb(&self) -> u32 {
        let need = 192.0 + 2.5 * self.model_mb;
        // Round up to the next 64 MB step (Lambda allocates in 1 MB steps,
        // but we keep the search space coarse).
        ((need / 64.0).ceil() * 64.0) as u32
    }

    /// Effective vCPU share at `memory_mb` of Lambda memory.
    ///
    /// Lambda grants CPU linearly with memory: 1 vCPU at 1769 MB, up to 6
    /// vCPUs at 10240 MB (§III-B3 quotes these limits).
    pub fn vcpu_share(memory_mb: u32) -> f64 {
        (f64::from(memory_mb) / 1769.0).min(6.0)
    }

    /// Seconds to process 1 MB of training data at `memory_mb` of memory —
    /// the `u(m)` term of Eq. 2.
    ///
    /// Below one vCPU the speed scales linearly with the share; above one
    /// vCPU, Amdahl's law with this model's parallel fraction governs the
    /// gain from additional cores.
    pub fn compute_time_per_mb(&self, memory_mb: u32) -> f64 {
        let share = Self::vcpu_share(memory_mb);
        let speedup = if share <= 1.0 {
            share
        } else {
            let f = self.parallel_fraction;
            1.0 / ((1.0 - f) + f / share)
        };
        self.compute_s_per_mb / speedup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_sizes() {
        assert!((ModelSpec::mobilenet().model_mb - 12.0).abs() < 1e-9);
        assert!((ModelSpec::resnet50().model_mb - 89.0).abs() < 1e-9);
        assert!((ModelSpec::bert_base().model_mb - 340.0).abs() < 1e-9);
        // LR-Higgs parameters: 28 features -> ~112 bytes.
        assert!(ModelSpec::logistic_regression().model_mb < 0.001);
        // SVM: several KB.
        assert!(ModelSpec::svm().model_mb < 0.01);
    }

    #[test]
    fn lr_higgs_fits_dynamodb_but_mobilenet_does_not() {
        // Table II: DynamoDB works for LR (model < 400 KB), N/A for
        // MobileNet.
        assert!(ModelSpec::logistic_regression().model_mb < 0.4);
        assert!(ModelSpec::logistic_regression_yfcc().model_mb < 0.4);
        assert!(ModelSpec::mobilenet().model_mb > 0.4);
    }

    #[test]
    fn vcpu_share_matches_lambda() {
        assert!((ModelSpec::vcpu_share(1769) - 1.0).abs() < 1e-12);
        assert!((ModelSpec::vcpu_share(3538) - 2.0).abs() < 1e-12);
        // Capped at 6 vCPUs.
        assert!((ModelSpec::vcpu_share(20000) - 6.0).abs() < 1e-12);
        assert!(ModelSpec::vcpu_share(884) < 0.51);
    }

    #[test]
    fn compute_time_decreases_with_memory() {
        let m = ModelSpec::mobilenet();
        let t_512 = m.compute_time_per_mb(512);
        let t_1769 = m.compute_time_per_mb(1769);
        let t_3538 = m.compute_time_per_mb(3538);
        let t_10240 = m.compute_time_per_mb(10240);
        assert!(t_512 > t_1769);
        assert!(t_1769 > t_3538);
        assert!(t_3538 > t_10240);
    }

    #[test]
    fn compute_time_at_one_vcpu_is_base() {
        let m = ModelSpec::resnet50();
        assert!((m.compute_time_per_mb(1769) - m.compute_s_per_mb).abs() < 1e-9);
    }

    #[test]
    fn amdahl_limits_multicore_gain() {
        // Beyond one vCPU the gain must be sub-linear.
        let m = ModelSpec::logistic_regression(); // parallel fraction 0.7
        let t1 = m.compute_time_per_mb(1769);
        let t2 = m.compute_time_per_mb(3538);
        let speedup = t1 / t2;
        assert!(speedup > 1.0 && speedup < 2.0, "speedup {speedup}");
        // With f = 0.7, 2 cores give 1/(0.3 + 0.35) ≈ 1.54.
        assert!((speedup - 1.538).abs() < 0.01);
    }

    #[test]
    fn min_memory_scales_with_model() {
        let lr = ModelSpec::logistic_regression().min_memory_mb();
        let bert = ModelSpec::bert_base().min_memory_mb();
        assert!(lr <= 256);
        assert!(bert >= 1024, "BERT needs room for its 340 MB blob");
        assert!(bert > lr);
        // Multiples of 64.
        assert_eq!(lr % 64, 0);
        assert_eq!(bert % 64, 0);
    }

    #[test]
    fn zoo_contains_all_families() {
        let zoo = ModelSpec::paper_zoo();
        assert_eq!(zoo.len(), 5);
        let names: Vec<String> = zoo.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec!["LR", "SVM", "MobileNet", "ResNet50", "BERT-base"]
        );
    }

    #[test]
    fn compute_intensity_ordering() {
        // Heavier models cost more per MB of data.
        let zoo = ModelSpec::paper_zoo();
        let lr = &zoo[0];
        let bert = &zoo[4];
        assert!(bert.compute_s_per_mb > 100.0 * lr.compute_s_per_mb);
    }
}
