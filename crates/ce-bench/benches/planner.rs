//! Greedy-planner benchmarks (Fig. 21a): planning latency with the
//! Pareto boundary vs the full grid (WO-pa).

use ce_models::{Environment, Workload};
use ce_pareto::ParetoProfiler;
use ce_tuning::{CandidateSet, GreedyPlanner, Objective, PartitionPlan, PlannerConfig, ShaSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_planner(c: &mut Criterion) {
    let env = Environment::aws_default();
    let w = Workload::mobilenet_cifar10();
    let profile = ParetoProfiler::new(&env).profile_workload(&w);
    let sha = ShaSpec::paper_default();
    let budget = PartitionPlan::uniform(*profile.cheapest().unwrap(), sha).cost() * 2.0;
    let objective = Objective::MinJctGivenBudget {
        budget,
        qos_s: None,
    };

    let mut group = c.benchmark_group("planner/algorithm1");
    group.sample_size(20);
    for (name, candidates) in [
        ("pareto", CandidateSet::ParetoBoundary),
        ("wo-pa-full-grid", CandidateSet::FullSpace),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let planner = GreedyPlanner::new(&profile, sha, 3000).with_config(PlannerConfig {
                    candidates,
                    ..PlannerConfig::default()
                });
                black_box(planner.plan(black_box(objective)).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_bracket_scaling(c: &mut Criterion) {
    let env = Environment::aws_default();
    let w = Workload::lr_higgs();
    let profile = ParetoProfiler::new(&env).profile_workload(&w);
    let mut group = c.benchmark_group("planner/bracket-scaling");
    group.sample_size(20);
    for trials in [64u32, 1024, 16_384] {
        let sha = ShaSpec::new(trials, 2, 2);
        let budget = PartitionPlan::uniform(*profile.cheapest().unwrap(), sha).cost() * 2.0;
        let objective = Objective::MinJctGivenBudget {
            budget,
            qos_s: None,
        };
        group.bench_with_input(BenchmarkId::from_parameter(trials), &sha, |b, &sha| {
            b.iter(|| {
                let planner = GreedyPlanner::new(&profile, sha, 3000);
                black_box(planner.plan(black_box(objective)).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planner, bench_bracket_scaling);
criterion_main!(benches);
