//! Hyperband bracket generation.
//!
//! Hyperband hedges SHA's fixed trade-off between the number of trials
//! and the epochs each gets by running several SHA brackets in sequence:
//! bracket `s = s_max … 0` starts `n_s = ⌈(s_max+1)/(s+1)⌉ · η^s` trials
//! with `r_s = R / η^s` epochs per stage. Every bracket is an ordinary
//! [`ShaSpec`], so CE-scaling's greedy planner partitions each bracket's
//! resources unchanged — which is exactly the paper's "can be applied to
//! them" claim for SHA-family tuners.

use crate::sha::ShaSpec;
use serde::{Deserialize, Serialize};

/// A Hyperband configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HyperbandSpec {
    /// Maximum epochs a single trial may receive across a bracket (`R`).
    pub max_epochs_per_trial: u32,
    /// Reduction factor `η` (usually 3 for Hyperband, 2 here to match
    /// the paper's SHA setting).
    pub eta: u32,
}

impl HyperbandSpec {
    /// Creates a spec.
    ///
    /// # Panics
    /// Panics if `eta < 2` or `max_epochs_per_trial < eta`.
    pub fn new(max_epochs_per_trial: u32, eta: u32) -> Self {
        assert!(eta >= 2);
        assert!(max_epochs_per_trial >= eta);
        HyperbandSpec {
            max_epochs_per_trial,
            eta,
        }
    }

    /// `s_max = ⌊log_η R⌋`: the most aggressive bracket index.
    pub fn s_max(&self) -> u32 {
        let mut s = 0;
        let mut v = self.max_epochs_per_trial;
        while v >= self.eta {
            v /= self.eta;
            s += 1;
        }
        s
    }

    /// Generates the bracket ladder, most exploratory first. Each
    /// bracket is an [`ShaSpec`] whose initial trial count is the
    /// largest power of `η` not exceeding Hyperband's `n_s` (our
    /// [`ShaSpec`] requires power-of-η trial counts) and whose
    /// epochs-per-stage is `max(1, R / η^s)`.
    pub fn brackets(&self) -> Vec<ShaSpec> {
        let s_max = self.s_max();
        let mut out = Vec::with_capacity(s_max as usize + 1);
        for s in (0..=s_max).rev() {
            let n_s = ((s_max + 1) as f64 / (s + 1) as f64).ceil() as u32 * self.eta.pow(s);
            let trials = largest_power_at_most(self.eta, n_s).max(self.eta);
            let epochs = (self.max_epochs_per_trial / self.eta.pow(s)).max(1);
            out.push(ShaSpec::new(trials, self.eta, epochs));
        }
        out
    }

    /// Total trial-epochs across all brackets (the work a scheduler must
    /// budget for).
    pub fn total_trial_epochs(&self) -> u64 {
        self.brackets().iter().map(|b| b.total_trial_epochs()).sum()
    }
}

fn largest_power_at_most(base: u32, x: u32) -> u32 {
    let mut p = 1u32;
    while p.saturating_mul(base) <= x {
        p *= base;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_max_is_floor_log() {
        assert_eq!(HyperbandSpec::new(16, 2).s_max(), 4);
        assert_eq!(HyperbandSpec::new(27, 3).s_max(), 3);
        assert_eq!(HyperbandSpec::new(17, 2).s_max(), 4);
    }

    #[test]
    fn bracket_ladder_shape() {
        let hb = HyperbandSpec::new(16, 2);
        let brackets = hb.brackets();
        assert_eq!(brackets.len(), 5);
        // Most exploratory bracket first: many trials, few epochs/stage.
        assert!(brackets[0].initial_trials > brackets.last().unwrap().initial_trials);
        assert!(brackets[0].epochs_per_stage <= brackets.last().unwrap().epochs_per_stage);
        // Every bracket is a valid power-of-η SHA spec (ShaSpec::new
        // would have panicked otherwise).
        for b in &brackets {
            assert!(b.initial_trials >= 2);
            assert!(b.epochs_per_stage >= 1);
        }
    }

    #[test]
    fn trial_counts_are_powers_of_eta() {
        for eta in [2u32, 3] {
            let hb = HyperbandSpec::new(eta.pow(3), eta);
            for b in hb.brackets() {
                let mut q = b.initial_trials;
                while q > 1 {
                    assert_eq!(q % eta, 0, "{q} not a power of {eta}");
                    q /= eta;
                }
            }
        }
    }

    #[test]
    fn exploratory_bracket_dominates_work() {
        let hb = HyperbandSpec::new(16, 2);
        let brackets = hb.brackets();
        let works: Vec<u64> = brackets.iter().map(|b| b.total_trial_epochs()).collect();
        // Work per bracket is roughly balanced (that is Hyperband's
        // design); no bracket does more than half the total.
        let total: u64 = works.iter().sum();
        assert_eq!(total, hb.total_trial_epochs());
        for w in works {
            assert!(w * 2 <= total + w, "bracket work {w} of {total}");
        }
    }

    #[test]
    #[should_panic]
    fn eta_one_rejected() {
        HyperbandSpec::new(8, 1);
    }
}
