//! The cluster-style Fixed baseline.
//!
//! Fixed "divides resources equally among stages and across trials in
//! each stage" (§IV-B). Under a budget, every stage receives `b_c / d`
//! dollars regardless of how many trials it runs, so each of the 32
//! first-stage trials gets 1/32nd of a stage share (severe competition)
//! while the 2-trial last stage drowns in resources it spends on
//! communication overhead. Under a QoS constraint, every stage receives
//! an equal slice `τ / d` of the deadline.

use ce_pareto::{AllocPoint, Profile};
use ce_tuning::{Objective, PartitionPlan, ShaSpec};

/// The Fixed scheduler.
#[derive(Debug, Clone, Default)]
pub struct FixedScheduler;

impl FixedScheduler {
    /// Creates the scheduler (stateless).
    pub fn new() -> Self {
        FixedScheduler
    }

    /// Builds the equal-split tuning plan.
    pub fn tuning_plan(
        &self,
        profile: &Profile,
        sha: ShaSpec,
        objective: Objective,
        max_concurrency: u32,
    ) -> Option<PartitionPlan> {
        let d = sha.num_stages();
        let points = profile.points();
        if points.is_empty() {
            return None;
        }
        let mut stages: Vec<AllocPoint> = Vec::with_capacity(d);
        for stage in 0..d {
            let q = f64::from(sha.trials_in_stage(stage));
            let r = f64::from(sha.epochs_per_stage);
            let point = match objective {
                Objective::MinJctGivenBudget { budget, .. } => {
                    // Stage share b_c/d split across q trials × r epochs.
                    let per_trial_epoch = budget / d as f64 / (q * r);
                    points
                        .iter()
                        .filter(|p| p.cost_usd() <= per_trial_epoch)
                        .min_by(|a, b| a.time_s().total_cmp(&b.time_s()))
                        .or_else(|| {
                            points
                                .iter()
                                .min_by(|a, b| a.cost_usd().total_cmp(&b.cost_usd()))
                        })
                }
                Objective::MinCostGivenQos { qos_s, .. } => {
                    // Equal deadline share τ/d per stage, and the *same*
                    // allocation for every stage and trial (that is what
                    // "fixed" means): the single θ must be fast enough
                    // for the wave-heavy first stage, over-provisioning
                    // every later one — the pathology the paper reports
                    // ("the budget is wasted by the communication
                    // overhead in later stages").
                    let share = qos_s / d as f64;
                    let meets_every_share = |p: &&AllocPoint| {
                        (0..d).all(|s| {
                            let per_wave = (max_concurrency / p.alloc.n).max(1);
                            let waves = f64::from(sha.trials_in_stage(s).div_ceil(per_wave));
                            r * p.time_s() * waves <= share
                        })
                    };
                    points
                        .iter()
                        .filter(meets_every_share)
                        .min_by(|a, b| a.cost_usd().total_cmp(&b.cost_usd()))
                        .or_else(|| {
                            points
                                .iter()
                                .min_by(|a, b| a.time_s().total_cmp(&b.time_s()))
                        })
                }
            }?;
            stages.push(*point);
        }
        Some(PartitionPlan::new(stages, sha))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_models::{Environment, Workload};
    use ce_pareto::ParetoProfiler;

    fn profile(w: &Workload) -> Profile {
        let env = Environment::aws_default();
        ParetoProfiler::new(&env).profile_workload(w)
    }

    #[test]
    fn early_stages_get_starved_under_budget() {
        let w = Workload::lr_higgs();
        let p = profile(&w);
        let sha = ShaSpec::motivation_example();
        // A budget that would comfortably fund a mid-boundary static plan.
        let budget = PartitionPlan::uniform(*p.cheapest().unwrap(), sha).cost() * 4.0;
        let plan = FixedScheduler::new()
            .tuning_plan(
                &p,
                sha,
                Objective::MinJctGivenBudget {
                    budget,
                    qos_s: None,
                },
                3000,
            )
            .unwrap();
        // Per-trial epoch cost must be non-decreasing across stages:
        // equal stage shares over shrinking trial counts.
        let first = plan.stages[0].cost_usd();
        let last = plan.stages[4].cost_usd();
        assert!(
            last >= first,
            "last stage per-trial allocation {last} < first {first}"
        );
    }

    #[test]
    fn fixed_is_slower_than_uniform_static_with_same_budget() {
        // The pathology the paper reports: Fixed has the worst JCT.
        let w = Workload::lr_higgs();
        let p = profile(&w);
        let sha = ShaSpec::motivation_example();
        let budget = PartitionPlan::uniform(*p.cheapest().unwrap(), sha).cost() * 4.0;
        let objective = Objective::MinJctGivenBudget {
            budget,
            qos_s: None,
        };
        let fixed = FixedScheduler::new()
            .tuning_plan(&p, sha, objective, 3000)
            .unwrap();
        let optimal_static = crate::statics::optimal_static_plan(&p, sha, objective, 3000).unwrap();
        assert!(fixed.jct(3000) >= optimal_static.jct(3000));
    }

    #[test]
    fn qos_variant_meets_stage_shares_where_possible() {
        let w = Workload::lr_higgs();
        let p = profile(&w);
        let sha = ShaSpec::motivation_example();
        let fastest = PartitionPlan::uniform(*p.fastest().unwrap(), sha);
        let tau = fastest.jct(3000) * 3.0;
        let plan = FixedScheduler::new()
            .tuning_plan(
                &p,
                sha,
                Objective::MinCostGivenQos {
                    qos_s: tau,
                    budget: None,
                },
                3000,
            )
            .unwrap();
        assert_eq!(plan.stages.len(), 5);
        // Each stage share is τ/5; the sum can exceed τ only via fallback
        // stages, which this generous τ avoids.
        assert!(plan.jct(3000) <= tau * 1.001, "{} vs {tau}", plan.jct(3000));
    }
}
