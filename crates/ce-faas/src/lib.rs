//! # ce-faas
//!
//! A discrete-event serverless-platform simulator standing in for AWS
//! Lambda (the substitution the repro band requires — see DESIGN.md §1).
//!
//! The simulator reproduces the causal structure every quantity in the
//! paper flows from:
//!
//! * functions get CPU in proportion to memory (1 vCPU at 1769 MB, 6 at
//!   10 240 MB);
//! * cold starts are second-scale and avoidable by pre-warming;
//! * BSP epochs are barrier-synchronized — the wave advances at the pace
//!   of the *slowest* worker, so per-worker lognormal jitter produces the
//!   straggler overhead real deployments show;
//! * billing is per-invocation plus GB-seconds of *wall* time (barrier
//!   waits are billed, exactly as on Lambda);
//! * parameter synchronization goes through a [`ce_storage`] service with
//!   the Eq. 3 transfer pattern.
//!
//! Modules:
//!
//! * [`platform`] — [`platform::FaasPlatform`], the stateful simulator
//!   (warm pools, billing ledger, seeded RNG).
//! * [`epoch`] — the BSP epoch executor (event-driven at iteration
//!   granularity, plus a fast analytic+jitter path for large sweeps).
//! * [`billing`] — the billing ledger and its conservation invariants.
//! * [`restart`] — resource-adjustment (function restart) timing,
//!   including the paper's *delayed restart* overlap optimization (Fig 8).
//! * [`function`] — instance lifecycle: warm pools, idle expiry,
//!   execution-limit accounting.
//! * [`keepalive`] — pluggable idle-expiry policies ([`keepalive::FixedTtl`],
//!   cost-aware [`keepalive::AdaptiveTtl`], Serverless-in-the-Wild-style
//!   [`keepalive::HistogramTtl`]) behind the [`keepalive::KeepAlive`] trait.
//! * [`quota`] — the shared account-level concurrency pool
//!   ([`quota::AccountQuota`]) and the typed overload signal
//!   ([`quota::QuotaExceeded`]) multi-tenant schedulers react to.
//!
//! ```
//! use ce_faas::{ExecutionFidelity, FaasPlatform};
//! use ce_models::{Allocation, Environment, Workload};
//! use ce_storage::StorageKind;
//!
//! let mut platform = FaasPlatform::new(Environment::aws_default(), 42);
//! let w = Workload::lr_higgs();
//! let theta = Allocation::new(10, 1769, StorageKind::S3);
//! let first = platform.run_epoch(&w, &theta, ExecutionFidelity::Fast).unwrap();
//! assert_eq!(first.cold_starts, 10);
//! // The wave stays warm: the next epoch reuses every instance.
//! let second = platform.run_epoch(&w, &theta, ExecutionFidelity::Fast).unwrap();
//! assert_eq!(second.cold_starts, 0);
//! assert_eq!(platform.pool_stats().warm_hits, 10);
//! ```

pub mod billing;
pub mod epoch;
pub mod function;
pub mod keepalive;
pub mod platform;
pub mod quota;
pub mod restart;
pub mod stage;

pub use billing::BillingLedger;
pub use epoch::{ExecutionFidelity, MeasuredEpoch};
pub use function::{FunctionId, FunctionInstance, InstancePool, PoolStats, ReapedInstance};
pub use keepalive::{
    keep_alive_by_name, parse_keep_alive, AdaptiveTtl, FixedTtl, HistogramTtl, KeepAlive,
    KeepAliveParseError,
};
pub use platform::{EpochError, FaasPlatform, PlatformConfig};
pub use quota::{AccountQuota, QuotaExceeded};
pub use restart::RestartPlan;
