//! Storage heterogeneity (Finding 3): the best external storage service
//! depends on the model size and the function count — and using the
//! "fastest" service is not always cheapest or even fastest overall.
//!
//! ```sh
//! cargo run --release --example storage_comparison
//! ```

use ce_scaling::ml::{DatasetSpec, ModelSpec};
use ce_scaling::models::{Allocation, CostModel, Environment, Workload};
use ce_scaling::storage::StorageKind;

fn main() {
    let env = Environment::aws_default();
    let cost_model = CostModel::new(&env);
    let workloads = [
        Workload::new(ModelSpec::logistic_regression(), DatasetSpec::higgs()),
        Workload::new(ModelSpec::mobilenet(), DatasetSpec::cifar10()),
        Workload::new(ModelSpec::bert_base(), DatasetSpec::imdb()),
    ];

    for w in &workloads {
        println!("\n{} (model blob: {:.3} MB)", w.label(), w.model.model_mb);
        println!(
            "  {:>4} {:>13} {:>12} {:>12} {:>10}",
            "n", "storage", "epoch time", "epoch cost", "sync share"
        );
        for n in [10u32, 50] {
            for storage in StorageKind::ALL {
                let spec = env.storage.get(storage).expect("catalog");
                if !spec.supports_model(w.model.model_mb) {
                    println!(
                        "  {n:>4} {:>13} {:>12} {:>12} {:>10}",
                        storage.to_string(),
                        "N/A",
                        "N/A",
                        ""
                    );
                    continue;
                }
                let alloc = Allocation::new(n, 1769, storage);
                let (time, cost) = cost_model.epoch_estimate(w, &alloc).expect("catalog");
                println!(
                    "  {n:>4} {:>13} {:>11.1}s {:>11.5}$ {:>9.0}%",
                    storage.to_string(),
                    time.total(),
                    cost.total(),
                    time.comm_fraction() * 100.0
                );
            }
        }
    }
    println!(
        "\nSmall models on few functions favour DynamoDB (cheap requests,\n\
         medium latency); large models at scale need VM-PS or ElastiCache\n\
         (low latency, local aggregation) — no single service wins, which\n\
         is why CE-scaling optimizes the storage choice jointly with the\n\
         function count and memory (Table II / Fig. 18)."
    );
}
