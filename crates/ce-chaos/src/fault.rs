//! The typed fault taxonomy: what can break, and with what severity.

use ce_storage::StorageKind;
use serde::{Deserialize, Serialize};

/// One kind of injected fault, with its severity parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Each epoch attempt inside the window loses a worker fatally with
    /// probability `rate` (the whole BSP wave's progress for that epoch is
    /// wasted — barrier semantics mean one lost worker stalls everyone).
    WorkerCrash { rate: f64 },
    /// A one-shot correlated kill: the first epoch attempt inside the window
    /// loses `ceil(fraction * n)` workers at once (spot reclaim, AZ event).
    WaveKill { fraction: f64 },
    /// The storage service refuses all requests while the window is open;
    /// jobs bound to it must stall until the window closes.
    StorageOutage { service: StorageKind },
    /// Brownout: the service's latency is multiplied by `factor` and its
    /// bandwidth divided by `factor` while the window is open.
    StorageDegrade { service: StorageKind, factor: f64 },
    /// Each invocation wave inside the window is throttled (HTTP 429) with
    /// probability `rate` before any worker starts.
    ThrottleStorm { rate: f64 },
    /// Cold-start mean latency is multiplied by `factor` inside the window
    /// (placement pressure, image-pull storms).
    ColdStartSpike { factor: f64 },
}

impl FaultKind {
    /// Short stable label used in spec strings, counters, and trace events.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::WorkerCrash { .. } => "crash",
            FaultKind::WaveKill { .. } => "wave",
            FaultKind::StorageOutage { .. } => "outage",
            FaultKind::StorageDegrade { .. } => "degrade",
            FaultKind::ThrottleStorm { .. } => "throttle",
            FaultKind::ColdStartSpike { .. } => "coldspike",
        }
    }

    /// True when the fault's severity is a no-op (rate 0, factor <= 1).
    /// Zero-severity faults never draw from the fault stream, which is what
    /// makes a zero-fault schedule bit-identical to no schedule at all.
    pub fn is_zero(&self) -> bool {
        match self {
            FaultKind::WorkerCrash { rate } | FaultKind::ThrottleStorm { rate } => *rate <= 0.0,
            FaultKind::WaveKill { fraction } => *fraction <= 0.0,
            FaultKind::StorageOutage { .. } => false,
            FaultKind::StorageDegrade { factor, .. } | FaultKind::ColdStartSpike { factor } => {
                *factor <= 1.0
            }
        }
    }
}

/// A fault active over the half-open simulated-time window
/// `[start_s, end_s)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    pub start_s: f64,
    pub end_s: f64,
    pub fault: FaultKind,
}

impl FaultWindow {
    pub fn contains(&self, t_s: f64) -> bool {
        t_s >= self.start_s && t_s < self.end_s
    }
}

/// A Poisson burst process: windows of `fault`, each `duration_s` long, with
/// arrival times drawn at compile time at a mean rate of `per_hour`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstSpec {
    pub fault: FaultKind,
    pub per_hour: f64,
    pub duration_s: f64,
}
