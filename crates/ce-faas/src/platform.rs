//! The stateful platform simulator.

use crate::billing::BillingLedger;
use crate::epoch::{self, ExecutionFidelity, MeasuredEpoch};
use crate::function::{InstancePool, PoolStats};
use crate::quota::{AccountQuota, QuotaExceeded};
use ce_chaos::{CompiledSchedule, FaultSchedule};
use ce_models::{Allocation, Environment, EpochTimeModel, UnknownStorage, Workload};
use ce_obs::Registry;
use ce_sim_core::rng::SimRng;
use ce_sim_core::time::SimTime;
use ce_storage::{StorageCatalog, StorageKind};
use serde::{Deserialize, Serialize};
use serde_json::json;
use std::fmt;

/// Why an epoch attempt produced no [`MeasuredEpoch`].
///
/// Quota rejections and unknown-storage lookups are *admission* errors: the
/// wave never launched and nothing was billed. The fault variants come from
/// an attached [`FaultSchedule`] and are *recoverable*: the caller decides
/// whether to back off, restore a checkpoint, or re-plan.
#[derive(Debug, Clone, PartialEq)]
pub enum EpochError {
    /// Concurrency admission failed (platform limit or shared account
    /// quota); see [`QuotaExceeded`].
    Quota(QuotaExceeded),
    /// The allocation names a storage service missing from the catalog.
    UnknownStorage(UnknownStorage),
    /// `lost` workers died at `at_fraction` of the epoch; the whole BSP
    /// wave's progress for this epoch is gone. `wasted_s` of wall time and
    /// `wasted_usd` of spend were burned and already recorded.
    WorkerLost {
        lost: u32,
        at_fraction: f64,
        wasted_s: f64,
        wasted_usd: f64,
    },
    /// The invocation wave was throttled (HTTP 429) before any worker
    /// started; `stall_s` is the platform's suggested minimum wait.
    Throttled { stall_s: f64 },
    /// The allocation's storage service is in an outage window until
    /// `resumes_at_s` on the platform clock.
    StorageUnavailable {
        service: StorageKind,
        resumes_at_s: f64,
    },
}

impl EpochError {
    /// The quota rejection, when that is what this error is.
    pub fn as_quota(&self) -> Option<&QuotaExceeded> {
        match self {
            EpochError::Quota(q) => Some(q),
            _ => None,
        }
    }

    /// True for injected faults (worker loss, throttling, storage outage)
    /// — conditions a recovery policy can wait out or repair, as opposed
    /// to admission errors that need a different allocation.
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            EpochError::WorkerLost { .. }
                | EpochError::Throttled { .. }
                | EpochError::StorageUnavailable { .. }
        )
    }
}

impl fmt::Display for EpochError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EpochError::Quota(q) => q.fmt(f),
            EpochError::UnknownStorage(e) => e.fmt(f),
            EpochError::WorkerLost {
                lost, at_fraction, ..
            } => write!(
                f,
                "{lost} worker(s) lost at {:.0}% of the epoch",
                at_fraction * 100.0
            ),
            EpochError::Throttled { stall_s } => {
                write!(f, "invocation wave throttled (suggest {stall_s:.1}s wait)")
            }
            EpochError::StorageUnavailable {
                service,
                resumes_at_s,
            } => write!(f, "{service} unavailable until t={resumes_at_s:.0}s"),
        }
    }
}

impl std::error::Error for EpochError {}

impl From<QuotaExceeded> for EpochError {
    fn from(e: QuotaExceeded) -> Self {
        EpochError::Quota(e)
    }
}

impl From<UnknownStorage> for EpochError {
    fn from(e: UnknownStorage) -> Self {
        EpochError::UnknownStorage(e)
    }
}

/// Per-platform fault-injection state: the compiled schedule plus the
/// dedicated RNG stream its decisions draw from. The stream is derived
/// from the platform seed by label only, so attaching a schedule never
/// shifts the epoch jitter streams — clean and chaotic runs stay
/// draw-for-draw comparable.
#[derive(Debug, Clone)]
struct ChaosState {
    schedule: CompiledSchedule,
    rng: SimRng,
    /// Monotone attempt counter keying fault draws. Counts *attempts*
    /// (including failed ones), unlike `epochs_run`, which only counts
    /// executed epochs — so a redone epoch re-derives the same jitter
    /// stream it would have had in a clean run.
    attempts: u64,
    /// One-shot latches for wave-kill windows, by compiled window index.
    fired_waves: Vec<bool>,
}

/// Stochastic-behaviour knobs of the simulated platform.
///
/// The jitter magnitudes are calibrated so the analytical models of
/// `ce-models` predict the simulator within the relative-error bands the
/// paper reports against CloudWatch (0.56–4.9 % JCT, 0.2–7.6 % cost;
/// Figs. 19–20).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Lognormal sigma of per-worker compute-duration jitter.
    pub compute_jitter: f64,
    /// Lognormal sigma of per-transfer network jitter.
    pub network_jitter: f64,
    /// Mean cold-start latency in seconds.
    pub cold_start_s: f64,
    /// Lognormal sigma of cold-start jitter.
    pub cold_start_jitter: f64,
    /// Maximum concurrent functions (AWS burst quota).
    pub max_concurrency: u32,
    /// Probability that a worker fails during one epoch and must be
    /// retried (the platform re-invokes it; the BSP barrier stalls for
    /// the re-execution). 0 by default — failure injection is opt-in.
    pub failure_rate: f64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            compute_jitter: 0.015,
            network_jitter: 0.06,
            cold_start_s: 1.8,
            cold_start_jitter: 0.25,
            max_concurrency: 3000,
            failure_rate: 0.0,
        }
    }
}

/// The simulated serverless platform: warm pools, billing, and seeded
/// randomness. One `FaasPlatform` instance represents one tenant account
/// running one job; parallel trials clone it with derived RNG streams.
#[derive(Debug, Clone)]
pub struct FaasPlatform {
    env: Environment,
    config: PlatformConfig,
    rng: SimRng,
    ledger: BillingLedger,
    /// Function-instance pool (warm reuse, idle expiry, limits).
    pool: InstancePool,
    /// The platform clock: advanced by every epoch's wall time, anchors
    /// warm-instance idle expiry.
    now: SimTime,
    epochs_run: u64,
    /// Observability sink. Private by default; [`Self::with_registry`]
    /// shares one. All platform metrics are counters/gauges (commutative
    /// adds), so aggregation across forked trial platforms is
    /// order-insensitive.
    obs: Registry,
    /// Optional account-level concurrency pool shared with other
    /// platforms (multi-tenant operation). `None` leaves only the
    /// per-platform `config.max_concurrency` check.
    shared_quota: Option<AccountQuota>,
    /// Optional fault injection; `None` (the default) is the clean
    /// platform, bit-identical to builds without chaos support.
    chaos: Option<ChaosState>,
}

impl FaasPlatform {
    /// Creates a platform over `env` with the default stochastic config.
    pub fn new(env: Environment, seed: u64) -> Self {
        FaasPlatform::with_config(env, PlatformConfig::default(), seed)
    }

    /// Creates a platform with an explicit config.
    pub fn with_config(env: Environment, config: PlatformConfig, seed: u64) -> Self {
        FaasPlatform {
            env,
            config,
            rng: SimRng::new(seed).derive("faas-platform"),
            ledger: BillingLedger::new(),
            pool: InstancePool::new(),
            now: SimTime::ZERO,
            epochs_run: 0,
            obs: Registry::new(),
            shared_quota: None,
            chaos: None,
        }
    }

    /// Attaches a fault schedule, compiled on this platform's dedicated
    /// `"faults"` stream. A zero-fault schedule (no windows, or all
    /// severities zero) leaves every simulated number bit-identical to a
    /// platform with no schedule at all.
    pub fn with_chaos(mut self, schedule: &FaultSchedule) -> Self {
        let faults_rng = self.rng.derive("faults");
        let compiled = schedule.compile(&faults_rng);
        self.chaos = Some(ChaosState {
            fired_waves: vec![false; compiled.windows().len()],
            schedule: compiled,
            rng: faults_rng,
            attempts: 0,
        });
        self
    }

    /// Sends platform metrics (`faas.*`) to a shared registry.
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.obs = registry.clone();
        self
    }

    /// Replaces the warm pool's idle-expiry policy (default:
    /// [`crate::keepalive::FixedTtl`] at 600 s, the provider window).
    pub fn with_keep_alive(mut self, policy: Box<dyn crate::keepalive::KeepAlive>) -> Self {
        self.pool.set_keep_alive(policy);
        self
    }

    /// Mutable access to the instance pool (the serving simulator drives
    /// per-request acquire/release and reaping directly).
    pub fn pool_mut(&mut self) -> &mut InstancePool {
        &mut self.pool
    }

    /// Draws this platform's concurrency from a shared account-level
    /// pool: every epoch reserves `alloc.n` functions from `quota` for
    /// its duration, so concurrent tenants contend for one limit.
    pub fn with_shared_quota(mut self, quota: &AccountQuota) -> Self {
        self.shared_quota = Some(quota.clone());
        self
    }

    /// The shared account quota, when one is attached.
    pub fn shared_quota(&self) -> Option<&AccountQuota> {
        self.shared_quota.as_ref()
    }

    /// The registry the platform's metrics live in.
    pub fn registry(&self) -> &Registry {
        &self.obs
    }

    /// The environment this platform simulates.
    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// The stochastic config.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Accumulated billing.
    pub fn ledger(&self) -> &BillingLedger {
        &self.ledger
    }

    /// Number of warm instances available at `memory_mb` right now.
    pub fn warm_count(&self, memory_mb: u32) -> u32 {
        self.pool.warm_count(memory_mb, self.now)
    }

    /// Provisions `n` warm instances of `memory_mb` (pre-warming before
    /// a stage starts or ahead of a delayed restart).
    pub fn prewarm(&mut self, n: u32, memory_mb: u32) {
        self.pool.prewarm(n, memory_mb, self.now);
    }

    /// Drops all warm instances (tenant teardown between phases).
    pub fn cool_down(&mut self) {
        self.pool.clear_idle();
    }

    /// The platform clock (sum of executed epochs' wall time).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the platform clock by `dt_s` seconds without running
    /// anything: recovery backoffs and checkpoint transfers burn real
    /// simulated time, which moves fault windows along and lets idle warm
    /// instances expire.
    pub fn advance(&mut self, dt_s: f64) {
        assert!(dt_s >= 0.0, "time cannot run backwards");
        self.now += dt_s;
    }

    /// Instance-pool counters (cold starts, warm hits, idle expiries,
    /// execution-limit breaches).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Samples the attached fault schedule for one epoch attempt. Returns
    /// a fatal error, or `(config, env)` overrides (cold-start spike,
    /// degraded storage) for the epoch about to execute.
    ///
    /// All draws come from the chaos stream keyed by a monotone *attempt*
    /// counter, never from the epoch jitter streams, and a quiet instant
    /// draws nothing — so surviving epochs match their clean twins
    /// draw-for-draw.
    fn sample_chaos(
        &mut self,
        w: &Workload,
        alloc: &Allocation,
    ) -> Result<(PlatformConfig, Option<Environment>), EpochError> {
        let mut config = self.config;
        let mut env_override = None;
        let Some(chaos) = self.chaos.as_mut() else {
            return Ok((config, env_override));
        };
        let active = chaos.schedule.active_at(self.now.as_secs());
        if active.is_quiet() {
            return Ok((config, env_override));
        }
        let mut draw = chaos.rng.derive_idx("attempt", chaos.attempts);
        chaos.attempts += 1;

        // Throttling storm: the invoke API rejects the wave before any
        // worker starts; nothing runs, nothing is billed.
        if active.throttle_rate > 0.0 && draw.bernoulli(active.throttle_rate) {
            self.obs.counter("chaos.throttles").inc();
            return Err(EpochError::Throttled {
                stall_s: self.config.cold_start_s,
            });
        }
        // Storage outage: the wave cannot sync gradients at all.
        if let Some(resumes_at_s) = active.outage_until(alloc.storage) {
            self.obs.counter("chaos.storage_outages").inc();
            return Err(EpochError::StorageUnavailable {
                service: alloc.storage,
                resumes_at_s,
            });
        }
        // Fatal worker loss: a one-shot correlated wave kill, or the
        // per-attempt crash draw. One lost worker wastes the whole BSP
        // wave's epoch; the partial work is billed below.
        let mut lost = 0u32;
        for &(window, fraction) in active.wave_kills() {
            if !chaos.fired_waves[window] {
                chaos.fired_waves[window] = true;
                let killed = (fraction * f64::from(alloc.n)).ceil() as u32;
                lost = lost.max(killed.clamp(1, alloc.n));
            }
        }
        if lost == 0 && active.crash_rate > 0.0 && draw.bernoulli(active.crash_rate) {
            lost = 1;
        }
        if lost > 0 {
            // Surface the typed catalog error rather than letting
            // EpochTimeModel's panic fire below.
            if self.env.storage.get(alloc.storage).is_none() {
                return Err(EpochError::UnknownStorage(UnknownStorage {
                    storage: alloc.storage,
                }));
            }
            let at_fraction = draw.uniform();
            let est = EpochTimeModel::new(&self.env).epoch_time(w, alloc).total();
            let wasted_s = est * at_fraction;
            let wasted_usd = self.env.pricing.invocation_cost(alloc.n)
                + self
                    .env
                    .pricing
                    .compute_cost(alloc.n, alloc.memory_mb, wasted_s);
            self.ledger
                .record_invocations(alloc.n, self.env.pricing.per_invocation);
            self.ledger.record_compute(
                alloc.n,
                alloc.memory_mb,
                wasted_s,
                self.env.pricing.per_gb_second,
            );
            self.now += wasted_s;
            self.obs.counter("chaos.worker_losses").add(u64::from(lost));
            self.obs.gauge("chaos.wasted_s").add(wasted_s);
            self.obs.gauge("chaos.wasted_usd").add(wasted_usd);
            self.obs.event(
                self.now.as_secs(),
                "chaos.worker_lost",
                &[
                    ("lost", json!(lost)),
                    ("at_fraction", json!(at_fraction)),
                    ("wasted_s", json!(wasted_s)),
                ],
            );
            return Err(EpochError::WorkerLost {
                lost,
                at_fraction,
                wasted_s,
                wasted_usd,
            });
        }
        // Non-fatal modifiers: these shift means, not draws, so the epoch
        // still consumes exactly the jitter stream of its clean twin.
        if active.cold_start_factor > 1.0 {
            config.cold_start_s *= active.cold_start_factor;
            self.obs.counter("chaos.cold_spikes").inc();
        }
        let degrade = active.degrade_factor(alloc.storage);
        if degrade > 1.0 {
            let mut env = self.env.clone();
            let services = env
                .storage
                .services()
                .iter()
                .map(|s| {
                    if s.kind == alloc.storage {
                        s.degraded(degrade)
                    } else {
                        s.clone()
                    }
                })
                .collect();
            env.storage = StorageCatalog::from_specs(services);
            env_override = Some(env);
            self.obs.counter("chaos.degraded_epochs").inc();
        }
        Ok((config, env_override))
    }

    /// Runs one BSP training epoch of `w` under `alloc`, consuming warm
    /// instances where available and billing everything to the ledger.
    ///
    /// # Errors
    /// Returns [`EpochError::Quota`] — a recoverable admission signal,
    /// never a panic — when `alloc.n` exceeds the platform concurrency
    /// limit, or when an attached shared [`AccountQuota`] cannot supply
    /// `alloc.n` functions right now. A rejected epoch runs nothing and
    /// bills nothing; the breach is counted under
    /// `faas.limit_breaches` / `faas.quota_rejections`.
    /// [`EpochError::UnknownStorage`] reports an allocation whose storage
    /// service is missing from the catalog. The remaining variants are
    /// injected faults from an attached [`FaultSchedule`]; worker losses
    /// bill their wasted partial work before returning.
    pub fn run_epoch(
        &mut self,
        w: &Workload,
        alloc: &Allocation,
        fidelity: ExecutionFidelity,
    ) -> Result<MeasuredEpoch, EpochError> {
        if alloc.n > self.config.max_concurrency {
            self.obs.counter("faas.limit_breaches").inc();
            self.obs.counter("faas.quota_rejections").inc();
            return Err(EpochError::Quota(QuotaExceeded {
                requested: alloc.n,
                in_use: 0,
                limit: self.config.max_concurrency,
            }));
        }
        let (config, env_override) = self.sample_chaos(w, alloc)?;
        if let Some(quota) = &self.shared_quota {
            if let Err(e) = quota.try_acquire(alloc.n) {
                self.obs.counter("faas.limit_breaches").inc();
                self.obs.counter("faas.quota_rejections").inc();
                return Err(e.into());
            }
        }
        let breaches_before = self.pool.stats().limit_breaches;
        let (ids, cold) = self.pool.acquire(alloc.n, alloc.memory_mb, self.now);

        let mut epoch_rng = self.rng.derive_idx("epoch", self.epochs_run);
        self.epochs_run += 1;
        let measured = match epoch::simulate_epoch(
            env_override.as_ref().unwrap_or(&self.env),
            &config,
            w,
            alloc,
            cold,
            fidelity,
            &mut epoch_rng,
        ) {
            Ok(m) => m,
            Err(e) => {
                // Unknown storage: the wave never launched. Return the
                // instances and the account reservation untouched.
                self.pool.release(&ids, 0.0, self.now);
                if let Some(quota) = &self.shared_quota {
                    quota.release(alloc.n);
                }
                return Err(e.into());
            }
        };
        self.now += measured.wall_s;
        self.pool.release(&ids, measured.wall_s, self.now);

        self.ledger
            .record_invocations(alloc.n, self.env.pricing.per_invocation);
        self.ledger.record_compute(
            alloc.n,
            alloc.memory_mb,
            measured.wall_s,
            self.env.pricing.per_gb_second,
        );
        self.ledger.record_storage(
            measured.cost.storage_requests,
            measured.cost.storage_runtime,
        );

        self.obs.counter("faas.invocations").add(u64::from(alloc.n));
        self.obs.counter("faas.cold_starts").add(u64::from(cold));
        self.obs
            .counter("faas.warm_starts")
            .add(u64::from(alloc.n - cold));
        self.obs
            .counter("faas.failures")
            .add(u64::from(measured.failures));
        self.obs
            .counter("faas.retries")
            .add(u64::from(measured.failures));
        self.obs
            .gauge("faas.billed_gb_s")
            .add(f64::from(alloc.n) * f64::from(alloc.memory_mb) / 1024.0 * measured.wall_s);
        self.obs.gauge("faas.dollars").add(measured.cost.total());
        self.obs
            .counter("faas.limit_breaches")
            .add(self.pool.stats().limit_breaches - breaches_before);
        if cold > 0 {
            self.obs
                .histogram("faas.cold_start_s")
                .observe(measured.cold_start_s);
        }
        if measured.failures > 0 {
            self.obs
                .histogram("faas.retry_stall_s")
                .observe(measured.failure_s);
        }
        if let Some(quota) = &self.shared_quota {
            quota.release(alloc.n);
        }
        Ok(measured)
    }

    /// Derives an independent platform for a parallel trial: same
    /// environment and config, fresh ledger and warm pool, RNG stream
    /// keyed by `label`/`idx`.
    pub fn fork(&self, label: &str, idx: u64) -> FaasPlatform {
        FaasPlatform {
            env: self.env.clone(),
            config: self.config,
            rng: self.rng.derive_idx(label, idx),
            ledger: BillingLedger::new(),
            pool: InstancePool::new(),
            now: SimTime::ZERO,
            epochs_run: 0,
            // Forked trials share the sink: their counter adds commute,
            // so the aggregate is deterministic regardless of trial order.
            obs: self.obs.clone(),
            // The account quota is account-wide: forks contend with the
            // parent and each other.
            shared_quota: self.shared_quota.clone(),
            // Forks run offline trials (profiling, tuning brackets); fault
            // schedules target the online training platform only.
            chaos: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_storage::StorageKind;

    fn platform() -> FaasPlatform {
        FaasPlatform::new(Environment::aws_default(), 42)
    }

    fn lr_alloc() -> Allocation {
        Allocation::new(10, 1769, StorageKind::S3)
    }

    #[test]
    fn epoch_bills_ledger() {
        let mut p = platform();
        let w = Workload::lr_higgs();
        let m = p
            .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .unwrap();
        let l = p.ledger();
        assert_eq!(l.invocations, 10);
        assert!(l.gb_seconds > 0.0);
        assert!((l.gb_seconds - 10.0 * 1769.0 / 1024.0 * m.wall_s).abs() < 1e-9);
        assert!(l.total_dollars() > 0.0);
    }

    #[test]
    fn cold_then_warm_waves() {
        let mut p = platform();
        let w = Workload::lr_higgs();
        let first = p
            .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .unwrap();
        assert_eq!(first.cold_starts, 10);
        let second = p
            .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .unwrap();
        assert_eq!(second.cold_starts, 0);
        assert!(first.cold_start_s > 1.0, "cold wave pays the cold start");
        assert_eq!(second.cold_start_s, 0.0, "warm wave pays none");
    }

    #[test]
    fn prewarm_eliminates_cold_starts() {
        let mut p = platform();
        let w = Workload::lr_higgs();
        p.prewarm(10, 1769);
        let m = p
            .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .unwrap();
        assert_eq!(m.cold_starts, 0);
    }

    #[test]
    fn cool_down_forgets_warm_pool() {
        let mut p = platform();
        let w = Workload::lr_higgs();
        p.run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .unwrap();
        p.cool_down();
        let m = p
            .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .unwrap();
        assert_eq!(m.cold_starts, 10);
    }

    #[test]
    fn growing_the_wave_cold_starts_only_new_instances() {
        let mut p = platform();
        let w = Workload::lr_higgs();
        p.run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .unwrap();
        let bigger = Allocation::new(16, 1769, StorageKind::S3);
        let m = p.run_epoch(&w, &bigger, ExecutionFidelity::Fast).unwrap();
        assert_eq!(m.cold_starts, 6);
    }

    #[test]
    fn concurrency_quota_is_a_typed_error() {
        let mut p = platform();
        let w = Workload::lr_higgs();
        let huge = Allocation::new(5000, 1769, StorageKind::S3);
        let err = p.run_epoch(&w, &huge, ExecutionFidelity::Fast).unwrap_err();
        let quota = err.as_quota().expect("a quota error");
        assert!(quota.is_structural(), "5000 > 3000 can never fit");
        assert_eq!(quota.limit, 3000);
        assert_eq!(p.registry().counter("faas.limit_breaches").get(), 1);
        assert_eq!(p.registry().counter("faas.quota_rejections").get(), 1);
        assert_eq!(p.ledger().invocations, 0, "a rejected epoch bills nothing");
    }

    #[test]
    fn shared_quota_contention_rejects_and_recovers() {
        let quota = AccountQuota::new(8);
        let mut p = platform().with_shared_quota(&quota);
        let w = Workload::lr_higgs();
        // 10 > 8: the account pool cannot supply the wave.
        let err = p
            .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .unwrap_err();
        assert!(err.as_quota().expect("a quota error").is_structural());
        assert_eq!(quota.rejections(), 1);
        assert_eq!(quota.in_use(), 0, "a failed acquire leaks nothing");
        // Another tenant holding part of the pool blocks an otherwise
        // feasible wave; releasing it unblocks.
        let quota = AccountQuota::new(12);
        let mut p = platform().with_shared_quota(&quota);
        quota.try_acquire(5).unwrap();
        assert!(p
            .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .is_err());
        quota.release(5);
        let m = p
            .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .unwrap();
        assert!(m.wall_s > 0.0);
        assert_eq!(quota.in_use(), 0, "epoch returned its reservation");
        assert_eq!(quota.peak(), 10);
    }

    #[test]
    fn same_seed_same_measurements() {
        let run = || {
            let mut p = FaasPlatform::new(Environment::aws_default(), 7);
            let w = Workload::lr_higgs();
            (0..3)
                .map(|_| {
                    p.run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
                        .unwrap()
                        .wall_s
                })
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn forked_platforms_are_independent_but_deterministic() {
        let p = platform();
        let w = Workload::lr_higgs();
        let mut a1 = p.fork("trial", 0);
        let mut a2 = p.fork("trial", 0);
        let mut b = p.fork("trial", 1);
        let wa1 = a1
            .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .unwrap()
            .wall_s;
        let wa2 = a2
            .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .unwrap()
            .wall_s;
        let wb = b
            .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .unwrap()
            .wall_s;
        assert_eq!(wa1, wa2);
        assert_ne!(wa1, wb);
        assert_eq!(p.ledger().total_dollars(), 0.0, "fork must not bill parent");
    }

    #[test]
    fn zero_fault_schedule_is_bit_identical_to_no_schedule() {
        let run = |schedule: Option<FaultSchedule>| {
            let registry = Registry::new();
            let mut p = FaasPlatform::new(Environment::aws_default(), 7).with_registry(&registry);
            if let Some(s) = schedule {
                p = p.with_chaos(&s);
            }
            let w = Workload::lr_higgs();
            let walls: Vec<f64> = (0..5)
                .map(|_| {
                    p.run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
                        .unwrap()
                        .wall_s
                })
                .collect();
            (walls, registry.export_jsonl())
        };
        let clean = run(None);
        let zero = run(Some(
            FaultSchedule::parse("crash:0@0..inf;coldspike:x1@0..inf").unwrap(),
        ));
        assert_eq!(clean.0, zero.0, "zero-fault walls must match clean");
        assert_eq!(clean.1, zero.1, "zero-fault JSONL must be byte-identical");
    }

    #[test]
    fn chaos_leaves_surviving_epoch_draws_unchanged() {
        // The schedule-level extension of
        // `epoch::tests::failure_toggle_preserves_jitter_streams`: with a
        // crash schedule attached, the i-th *executed* epoch must consume
        // exactly the jitter draws of the clean run's i-th epoch — fault
        // decisions live on their own stream keyed by attempt, and redone
        // epochs re-derive the same epoch stream index.
        let w = Workload::lr_higgs();
        let run = |schedule: Option<FaultSchedule>| {
            let mut p = FaasPlatform::new(Environment::aws_default(), 11);
            if let Some(s) = schedule {
                p = p.with_chaos(&s);
            }
            let mut epochs = Vec::new();
            let mut faults = 0;
            while epochs.len() < 8 {
                // Pre-warm so pool state (cold counts) cannot diverge
                // between the clean and chaotic histories.
                p.prewarm(10, 1769);
                match p.run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast) {
                    Ok(m) => epochs.push(m),
                    Err(e) => {
                        assert!(e.is_fault());
                        faults += 1;
                        assert!(faults < 1000, "chaos must not starve the job");
                    }
                }
            }
            (epochs, faults)
        };
        let (clean, zero_faults) = run(None);
        assert_eq!(zero_faults, 0);
        let (chaotic, faults) = run(Some(FaultSchedule::parse("crash:0.4@0..inf").unwrap()));
        assert!(faults > 0, "40% per-attempt crashes must fire in 8 epochs");
        for (i, (c, f)) in clean.iter().zip(&chaotic).enumerate() {
            assert_eq!(c.time, f.time, "epoch {i}: jitter draws must survive");
            assert_eq!(c.wall_s, f.wall_s, "epoch {i}");
        }
    }

    #[test]
    fn throttle_storm_rejects_waves_without_billing() {
        let mut p = FaasPlatform::new(Environment::aws_default(), 3)
            .with_chaos(&FaultSchedule::parse("throttle:1@0..inf").unwrap());
        let w = Workload::lr_higgs();
        let err = p
            .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .unwrap_err();
        assert!(matches!(err, EpochError::Throttled { stall_s } if stall_s > 0.0));
        assert_eq!(p.ledger().invocations, 0, "a throttled wave bills nothing");
        assert_eq!(p.registry().counter("chaos.throttles").get(), 1);
    }

    #[test]
    fn storage_outage_names_service_and_end_time() {
        let mut p = FaasPlatform::new(Environment::aws_default(), 3)
            .with_chaos(&FaultSchedule::parse("outage:s3@0..500").unwrap());
        let w = Workload::lr_higgs();
        let err = p
            .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .unwrap_err();
        assert_eq!(
            err,
            EpochError::StorageUnavailable {
                service: StorageKind::S3,
                resumes_at_s: 500.0
            }
        );
        // A different service rides out the outage untouched.
        let vmps = Allocation::new(10, 1769, StorageKind::VmPs);
        assert!(p.run_epoch(&w, &vmps, ExecutionFidelity::Fast).is_ok());
        // Past the window the service is back.
        p.advance(600.0);
        assert!(p
            .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .is_ok());
    }

    #[test]
    fn worker_loss_bills_partial_epoch_and_advances_clock() {
        let mut p = FaasPlatform::new(Environment::aws_default(), 5)
            .with_chaos(&FaultSchedule::parse("crash:1@0..inf").unwrap());
        let w = Workload::lr_higgs();
        let err = p
            .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .unwrap_err();
        let EpochError::WorkerLost {
            lost,
            at_fraction,
            wasted_s,
            wasted_usd,
        } = err
        else {
            panic!("expected WorkerLost, got {err:?}");
        };
        assert_eq!(lost, 1);
        assert!((0.0..1.0).contains(&at_fraction));
        assert!((p.now().as_secs() - wasted_s).abs() < 1e-12);
        assert!(wasted_usd > 0.0);
        assert_eq!(p.ledger().invocations, 10, "partial work is billed");
        assert_eq!(p.registry().counter("chaos.worker_losses").get(), 1);
        assert_eq!(p.registry().event_count(), 1, "fault emits an event");
    }

    #[test]
    fn wave_kill_fires_exactly_once_per_window() {
        let mut p = FaasPlatform::new(Environment::aws_default(), 5)
            .with_chaos(&FaultSchedule::parse("wave:0.5@0..1e9").unwrap());
        let w = Workload::lr_higgs();
        let err = p
            .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
            .unwrap_err();
        assert!(
            matches!(err, EpochError::WorkerLost { lost: 5, .. }),
            "half of 10 workers: {err:?}"
        );
        // The window is still open but the latch has fired: later epochs run.
        for _ in 0..3 {
            assert!(p
                .run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
                .is_ok());
        }
    }

    #[test]
    fn cold_spike_slows_cold_waves_only() {
        let wall_of_first_epoch = |spec: &str| {
            let mut p = FaasPlatform::new(Environment::aws_default(), 13)
                .with_chaos(&FaultSchedule::parse(spec).unwrap());
            let w = Workload::lr_higgs();
            p.run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
                .unwrap()
        };
        let clean = wall_of_first_epoch("coldspike:x1@0..inf");
        let spiked = wall_of_first_epoch("coldspike:x5@0..inf");
        assert!((spiked.cold_start_s - 5.0 * clean.cold_start_s).abs() < 1e-9);
        assert!(spiked.wall_s > clean.wall_s);
        assert_eq!(spiked.time, clean.time, "only the cold-start mean moves");
    }

    #[test]
    fn degraded_storage_slows_sync_during_window() {
        let first_epoch = |spec: Option<&str>| {
            let mut p = FaasPlatform::new(Environment::aws_default(), 17);
            if let Some(s) = spec {
                p = p.with_chaos(&FaultSchedule::parse(s).unwrap());
            }
            let w = Workload::lr_higgs();
            p.run_epoch(&w, &lr_alloc(), ExecutionFidelity::Fast)
                .unwrap()
        };
        let clean = first_epoch(None);
        let degraded = first_epoch(Some("degrade:s3:x4@0..inf"));
        assert!(degraded.time.sync_s > clean.time.sync_s);
        assert_eq!(
            degraded.time.compute_s, clean.time.compute_s,
            "compute is untouched by a storage brownout"
        );
    }
}
