//! The profiler: evaluates the analytical models over the allocation grid
//! in parallel and extracts the Pareto boundary.

use crate::profile::{AllocPoint, Profile};
use ce_ml::{DatasetSpec, ModelSpec};
use ce_models::{AllocationSpace, CostModel, Environment, EpochTimeModel, Workload};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-global memo for [`ParetoProfiler::profile_workload_cached`].
///
/// A profile is a pure function of `(environment, allocation space,
/// workload)`; fleets profile the same zoo workloads thousands of times.
/// Keys are the derived `Debug` renderings of all three inputs — derived
/// `Debug` covers every field recursively, so equal keys mean equal model
/// inputs (f64s print their shortest round-trip form, which is injective).
static PROFILE_CACHE: OnceLock<Mutex<HashMap<String, Arc<Profile>>>> = OnceLock::new();
static PROFILE_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static PROFILE_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` of the process-global profile cache, for overhead
/// reporting.
pub fn profile_cache_stats() -> (u64, u64) {
    (
        PROFILE_CACHE_HITS.load(Ordering::Relaxed),
        PROFILE_CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// Profiles workloads over an environment's allocation space.
///
/// The paper notes the profile "can be quickly obtained — in few seconds —
/// after users upload the model and the dataset"; here the sweep over the
/// default 13 × 16 × 4 grid takes microseconds, but the structure (sweep
/// once, search only the boundary afterwards) is identical.
#[derive(Debug, Clone)]
pub struct ParetoProfiler<'e> {
    env: &'e Environment,
    space: AllocationSpace,
}

impl<'e> ParetoProfiler<'e> {
    /// A profiler over the default AWS allocation grid.
    pub fn new(env: &'e Environment) -> Self {
        ParetoProfiler {
            env,
            space: AllocationSpace::aws_default(),
        }
    }

    /// Overrides the allocation grid.
    pub fn with_space(mut self, space: AllocationSpace) -> Self {
        self.space = space;
        self
    }

    /// The grid this profiler sweeps.
    pub fn space(&self) -> &AllocationSpace {
        &self.space
    }

    /// Profiles a (model, dataset) pair with the dataset's default batch.
    pub fn profile(&self, model: &ModelSpec, dataset: &DatasetSpec) -> Profile {
        self.profile_workload(&Workload::new(model.clone(), dataset.clone()))
    }

    /// Profiles a fully specified workload: evaluates `t'(θ)` and `c'(θ)`
    /// for every feasible `θ` in the grid (in parallel) and extracts the
    /// Pareto boundary.
    pub fn profile_workload(&self, w: &Workload) -> Profile {
        let allocs =
            self.space
                .enumerate(&self.env.storage, w.model.min_memory_mb(), w.model.model_mb);
        let time_model = EpochTimeModel::new(self.env);
        let cost_model = CostModel::new(self.env);
        let points: Vec<AllocPoint> = allocs
            .par_iter()
            .filter_map(|alloc| {
                let time = time_model.epoch_time(w, alloc);
                // An allocation naming a storage outside the catalog is
                // unprofilable, not fatal: drop the point, keep the sweep.
                let cost = cost_model.epoch_cost(w, alloc, &time).ok()?;
                Some(AllocPoint {
                    alloc: *alloc,
                    time,
                    cost,
                })
            })
            .collect();
        Profile::from_points(points)
    }

    /// [`Self::profile_workload`] through the process-global memo: the
    /// first profile of an `(env, space, workload)` triple sweeps the
    /// grid, every later one returns the shared result. The sweep is
    /// deterministic, so cached and fresh profiles are identical.
    pub fn profile_workload_cached(&self, w: &Workload) -> Arc<Profile> {
        let key = format!("{:?}\u{1}{:?}\u{1}{:?}", self.env, self.space, w);
        let cache = PROFILE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(hit) = cache.lock().expect("profile cache poisoned").get(&key) {
            PROFILE_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Sweep outside the lock: concurrent first-profilers may race and
        // both compute, but the sweep is pure so either result is the one
        // canonical profile.
        let profile = Arc::new(self.profile_workload(w));
        let mut guard = cache.lock().expect("profile cache poisoned");
        let entry = guard.entry(key).or_insert_with(|| Arc::clone(&profile));
        PROFILE_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        Arc::clone(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominates;
    use ce_models::AllocationSpace;
    use ce_storage::StorageKind;
    use std::sync::Arc;

    fn env() -> Environment {
        Environment::aws_default()
    }

    #[test]
    fn profile_covers_feasible_grid() {
        let env = env();
        let profiler = ParetoProfiler::new(&env).with_space(AllocationSpace::small());
        let profile = profiler.profile_workload(&Workload::lr_higgs());
        // LR fits everywhere: 4 n × 3 m × 4 s = 48 points.
        assert_eq!(profile.points().len(), 48);
        assert!(!profile.boundary().is_empty());
        assert!(
            profile.pruned_count() > 0,
            "grid must contain dominated points"
        );
    }

    #[test]
    fn boundary_points_nondominated_by_any_point() {
        let env = env();
        let profiler = ParetoProfiler::new(&env).with_space(AllocationSpace::small());
        let profile = profiler.profile_workload(&Workload::mobilenet_cifar10());
        for b in profile.boundary() {
            for p in profile.points() {
                assert!(
                    !dominates(p.time_s(), p.cost_usd(), b.time_s(), b.cost_usd()),
                    "{} dominates boundary point {}",
                    p.alloc,
                    b.alloc
                );
            }
        }
    }

    #[test]
    fn every_pruned_point_is_dominated_by_boundary() {
        let env = env();
        let profiler = ParetoProfiler::new(&env).with_space(AllocationSpace::small());
        let profile = profiler.profile_workload(&Workload::lr_higgs());
        let boundary = profile.boundary();
        for p in profile.points() {
            let on_boundary = boundary.iter().any(|b| b.alloc == p.alloc);
            if !on_boundary {
                // Weak dominance suffices: duplicates of boundary coords
                // are pruned too.
                let covered = boundary
                    .iter()
                    .any(|b| b.time_s() <= p.time_s() && b.cost_usd() <= p.cost_usd());
                assert!(covered, "pruned point {} not covered", p.alloc);
            }
        }
    }

    #[test]
    fn bert_profile_excludes_dynamodb_and_small_memory() {
        let env = env();
        let profiler = ParetoProfiler::new(&env);
        let profile = profiler.profile_workload(&Workload::bert_imdb());
        let min_mem = Workload::bert_imdb().model.min_memory_mb();
        for p in profile.points() {
            assert_ne!(p.alloc.storage, StorageKind::DynamoDb);
            assert!(p.alloc.memory_mb >= min_mem);
        }
    }

    #[test]
    fn profile_deterministic() {
        let env = env();
        let profiler = ParetoProfiler::new(&env).with_space(AllocationSpace::small());
        let a = profiler.profile_workload(&Workload::lr_higgs());
        let b = profiler.profile_workload(&Workload::lr_higgs());
        assert_eq!(a.points().len(), b.points().len());
        let coords = |p: &Profile| -> Vec<(f64, f64)> {
            p.boundary()
                .iter()
                .map(|x| (x.time_s(), x.cost_usd()))
                .collect()
        };
        assert_eq!(coords(&a), coords(&b));
    }

    #[test]
    fn default_grid_produces_multi_point_boundary() {
        // The boundary must expose a real time/cost trade-off for the
        // planners to explore (Fig. 7 shows a curve, not a point).
        let env = env();
        let profiler = ParetoProfiler::new(&env);
        for w in Workload::paper_matrix() {
            let profile = profiler.profile_workload(&w);
            assert!(
                profile.boundary().len() >= 4,
                "{}: boundary too small ({})",
                w.label(),
                profile.boundary().len()
            );
        }
    }

    #[test]
    fn cached_profile_matches_fresh_sweep_and_is_shared() {
        let env = env();
        let profiler = ParetoProfiler::new(&env).with_space(AllocationSpace::small());
        let fresh = profiler.profile_workload(&Workload::lr_higgs());
        let a = profiler.profile_workload_cached(&Workload::lr_higgs());
        let b = profiler.profile_workload_cached(&Workload::lr_higgs());
        // Second lookup returns the same shared allocation.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.points().len(), fresh.points().len());
        let coords = |p: &Profile| -> Vec<(f64, f64)> {
            p.boundary()
                .iter()
                .map(|x| (x.time_s(), x.cost_usd()))
                .collect()
        };
        assert_eq!(coords(&a), coords(&fresh));
        // A different workload misses: distinct profile.
        let c = profiler.profile_workload_cached(&Workload::mobilenet_cifar10());
        assert!(!Arc::ptr_eq(&a, &c));
        let (hits, misses) = profile_cache_stats();
        assert!(hits >= 1 && misses >= 2, "hits {hits} misses {misses}");
    }

    #[test]
    fn facade_quickstart_path_works() {
        // Mirrors the facade doc example.
        let env = env();
        let profile = ParetoProfiler::new(&env)
            .profile(&ModelSpec::logistic_regression(), &DatasetSpec::higgs());
        assert!(!profile.boundary().is_empty());
        assert!(profile.cheapest_within_jct(120.0).is_some());
    }
}
