//! Azure-Functions-style invocation trace zoo.
//!
//! Production FaaS traffic ("Serverless in the Wild", the Azure
//! Functions traces) is dominated by two facts the synthetic arrival
//! models above miss: per-function popularity is *heavy-tailed* (a few
//! functions carry most invocations; a long tail is invoked rarely),
//! and different functions follow different temporal classes — steady
//! Poisson hum, diurnal day/night swings, ON-OFF bursts, and rare
//! cold-tail functions whose every invocation is a cold start.
//!
//! [`ZooSpec`] generates such traces deterministically: function `i`
//! gets a Zipf share `(i+1)^-s` of the total rate, a temporal class
//! drawn from the preset's class mix, and its own arrival schedule from
//! a per-function forked RNG stream (so generation parallelizes over
//! functions without changing a single bit). The merged schedule is an
//! ordinary ascending arrival vector — it round-trips through the
//! arrival-log format and replays bit-exactly via `--arrivals
//! trace:<log>`.

use ce_sim_core::rng::SimRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::arrival::ArrivalModel;

/// Temporal class of one function in the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FunctionClass {
    /// Homogeneous Poisson at the function's rate.
    Steady,
    /// Sinusoidal day/night swing around the function's rate.
    Diurnal,
    /// Two-state ON-OFF (MMPP) bursts, time-averaging the rate.
    Bursty,
    /// Rare cold-tail invocations: the rate is capped far below the
    /// keep-alive horizon, so effectively every call is a cold start.
    RareCold,
}

impl FunctionClass {
    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FunctionClass::Steady => "steady",
            FunctionClass::Diurnal => "diurnal",
            FunctionClass::Bursty => "bursty",
            FunctionClass::RareCold => "rare-cold",
        }
    }
}

/// A seeded generator of production-style invocation traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZooSpec {
    /// Preset name, echoed in reports.
    pub preset: String,
    /// Number of functions in the zoo.
    pub functions: u32,
    /// Aggregate arrival rate across all functions (requests/second).
    pub total_rps: f64,
    /// Zipf popularity exponent `s`: function `i` carries a share
    /// proportional to `(i+1)^-s`. Larger ⇒ heavier head.
    pub zipf_exponent: f64,
    /// Class mix `[steady, diurnal, bursty, rare-cold]`; normalized.
    pub class_weights: [f64; 4],
    /// Amplitude of diurnal-class functions, in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Period of one diurnal cycle, seconds.
    pub diurnal_period_s: f64,
    /// Burst-state rate multiplier for bursty-class functions: the ON
    /// rate is `burst_factor ×` the OFF rate, time-averaging to the
    /// function's Zipf share.
    pub burst_factor: f64,
    /// Mean ON/OFF dwell time for bursty-class functions, seconds.
    pub burst_dwell_s: f64,
    /// Rate cap for rare-cold functions (requests/second).
    pub cold_rate_rps: f64,
}

/// Names of the built-in presets, for CLI errors and docs.
#[must_use]
pub fn zoo_preset_names() -> &'static [&'static str] {
    &["mixed", "steady", "diurnal", "bursty", "coldtail"]
}

impl ZooSpec {
    /// A named preset, or `None` for an unknown name.
    #[must_use]
    pub fn preset(name: &str) -> Option<ZooSpec> {
        let base = ZooSpec {
            preset: name.to_string(),
            functions: 80,
            total_rps: 40.0,
            zipf_exponent: 1.1,
            class_weights: [0.4, 0.25, 0.25, 0.1],
            diurnal_amplitude: 0.8,
            diurnal_period_s: 600.0,
            burst_factor: 8.0,
            burst_dwell_s: 30.0,
            cold_rate_rps: 0.02,
        };
        match name {
            // The headline production-style mix.
            "mixed" => Some(base),
            // Single-class variants isolate one temporal shape while
            // keeping the Zipf popularity skew.
            "steady" => Some(ZooSpec {
                class_weights: [1.0, 0.0, 0.0, 0.0],
                ..base
            }),
            "diurnal" => Some(ZooSpec {
                class_weights: [0.0, 1.0, 0.0, 0.0],
                ..base
            }),
            "bursty" => Some(ZooSpec {
                class_weights: [0.0, 0.0, 1.0, 0.0],
                ..base
            }),
            // A long cold tail: many rarely-invoked functions.
            "coldtail" => Some(ZooSpec {
                functions: 200,
                total_rps: 20.0,
                zipf_exponent: 0.9,
                class_weights: [0.25, 0.15, 0.2, 0.4],
                ..base
            }),
            _ => None,
        }
    }

    /// Normalized Zipf popularity weights over the zoo's functions.
    #[must_use]
    pub fn popularity(&self) -> Vec<f64> {
        let raw: Vec<f64> = (0..self.functions)
            .map(|i| f64::from(i + 1).powf(-self.zipf_exponent))
            .collect();
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|w| w / total).collect()
    }

    /// The temporal class of function `i`, drawn from the preset's
    /// class mix on a per-function forked stream.
    #[must_use]
    pub fn class_of(&self, i: u32, rng: &SimRng) -> FunctionClass {
        let total: f64 = self.class_weights.iter().sum();
        let mut u = rng.derive_idx("zoo-class", u64::from(i)).uniform() * total;
        for (class, &w) in [
            FunctionClass::Steady,
            FunctionClass::Diurnal,
            FunctionClass::Bursty,
            FunctionClass::RareCold,
        ]
        .iter()
        .zip(&self.class_weights)
        {
            u -= w;
            if u < 0.0 {
                return *class;
            }
        }
        FunctionClass::Steady
    }

    /// The arrival process of one function, given its Zipf-share rate.
    fn model_for(&self, class: FunctionClass, rate_rps: f64) -> ArrivalModel {
        match class {
            FunctionClass::Steady => ArrivalModel::Poisson { rps: rate_rps },
            FunctionClass::Diurnal => ArrivalModel::Diurnal {
                base_rps: rate_rps,
                amplitude: self.diurnal_amplitude,
                period_s: self.diurnal_period_s,
            },
            FunctionClass::Bursty => {
                // OFF/ON rates averaging to `rate_rps` with the preset's
                // ON:OFF ratio: low = 2r/(1+f), high = f·low.
                let low = 2.0 * rate_rps / (1.0 + self.burst_factor);
                ArrivalModel::Bursty {
                    low_rps: low,
                    high_rps: self.burst_factor * low,
                    mean_dwell_s: self.burst_dwell_s,
                }
            }
            FunctionClass::RareCold => ArrivalModel::Poisson {
                rps: rate_rps.min(self.cold_rate_rps),
            },
        }
    }

    /// Generates every function's schedule over `[0, duration_s)`:
    /// `(class, ascending arrivals)` per function, in function order.
    ///
    /// Each function draws only from its own `derive_idx("zoo-fn", i)`
    /// fork of `rng`, so the result is a pure function of (spec,
    /// duration, stream) regardless of thread count or call order.
    #[must_use]
    pub fn per_function(&self, duration_s: f64, rng: &SimRng) -> Vec<(FunctionClass, Vec<f64>)> {
        let popularity = self.popularity();
        (0..u64::from(self.functions))
            .into_par_iter()
            .map(|i| {
                let class = self.class_of(i as u32, rng);
                let rate = self.total_rps * popularity[i as usize];
                let mut fn_rng = rng.derive_idx("zoo-fn", i);
                (
                    class,
                    self.model_for(class, rate)
                        .generate(duration_s, &mut fn_rng),
                )
            })
            .collect()
    }

    /// The merged zoo schedule: all functions' arrivals in ascending
    /// time order (ties broken by function index, so the merge is
    /// byte-deterministic).
    #[must_use]
    pub fn generate(&self, duration_s: f64, rng: &SimRng) -> Vec<f64> {
        let mut tagged: Vec<(f64, u32)> = self
            .per_function(duration_s, rng)
            .into_iter()
            .enumerate()
            .flat_map(|(i, (_, arrivals))| {
                arrivals
                    .into_iter()
                    .map(move |t| (t, i as u32))
                    .collect::<Vec<_>>()
            })
            .collect();
        tagged.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        tagged.into_iter().map(|(t, _)| t).collect()
    }
}

/// Parses the `<preset>` tail of an `--arrivals zoo:<preset>` spec.
///
/// # Errors
/// A human-readable message for an empty or multi-segment spec, or an
/// unknown preset name (the message lists the valid presets).
pub fn parse_zoo(rest: &str) -> Result<ZooSpec, String> {
    if rest.is_empty() {
        return Err(format!(
            "zoo spec is missing a preset name (zoo:<preset>; presets: {})",
            zoo_preset_names().join("|")
        ));
    }
    if rest.contains(':') {
        return Err(format!(
            "malformed zoo spec {rest:?}: expected zoo:<preset> (presets: {})",
            zoo_preset_names().join("|")
        ));
    }
    ZooSpec::preset(rest).ok_or_else(|| {
        format!(
            "unknown zoo preset: {rest} ({})",
            zoo_preset_names().join("|")
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(42).derive("test-zoo")
    }

    #[test]
    fn every_preset_parses_and_generates() {
        for name in zoo_preset_names() {
            let spec = parse_zoo(name).expect(name);
            assert_eq!(spec.preset, *name);
            let arrivals = spec.generate(60.0, &rng());
            assert!(!arrivals.is_empty(), "{name} generated nothing");
            assert!(
                arrivals.windows(2).all(|w| w[0] <= w[1]),
                "{name} not ascending"
            );
            assert!(arrivals
                .iter()
                .all(|&t| t.is_finite() && (0.0..60.0).contains(&t)));
        }
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(parse_zoo("").unwrap_err().contains("missing a preset"));
        assert!(parse_zoo("mixed:3").unwrap_err().contains("malformed"));
        let err = parse_zoo("azure2019").unwrap_err();
        assert!(err.contains("unknown zoo preset"));
        assert!(err.contains("mixed"), "error must list presets: {err}");
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let spec = ZooSpec::preset("mixed").unwrap();
        let a = spec.generate(120.0, &rng());
        let b = spec.generate(120.0, &rng());
        assert_eq!(a, b);
        let other = spec.generate(120.0, &SimRng::new(7).derive("test-zoo"));
        assert_ne!(a, other, "seed must matter");
    }

    #[test]
    fn popularity_is_normalized_and_head_heavy() {
        let spec = ZooSpec::preset("mixed").unwrap();
        let p = spec.popularity();
        assert_eq!(p.len(), 80);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1] && p[1] > p[10] && p[10] > p[79]);
    }

    #[test]
    fn single_class_presets_draw_only_their_class() {
        let spec = ZooSpec::preset("bursty").unwrap();
        let r = rng();
        for i in 0..spec.functions {
            assert_eq!(spec.class_of(i, &r), FunctionClass::Bursty);
        }
    }

    #[test]
    fn total_rate_lands_near_the_spec() {
        // Long window so the empirical aggregate rate concentrates.
        let spec = ZooSpec::preset("steady").unwrap();
        let arrivals = spec.generate(600.0, &rng());
        let rate = arrivals.len() as f64 / 600.0;
        assert!(
            (rate - spec.total_rps).abs() < 0.1 * spec.total_rps,
            "aggregate rate {rate} vs spec {}",
            spec.total_rps
        );
    }
}
