//! Minimal in-tree `serde` replacement.
//!
//! The build environment is fully offline (no crates-io registry), so the
//! workspace vendors the small slice of serde it actually uses: a JSON
//! value model ([`Value`], [`Map`], [`Number`]) plus [`Serialize`] /
//! [`Deserialize`] traits whose derive macros live in the companion
//! `serde_derive` proc-macro crate.
//!
//! Unlike real serde there is no `Serializer`/`Deserializer` abstraction:
//! serialization goes through the [`Value`] tree. That is exactly what this
//! workspace needs (all serialization targets JSON via `serde_json`) and it
//! keeps the implementation small and deterministic.

pub mod de;
pub mod ser;
pub mod value;

pub use de::Deserialize;
pub use ser::Serialize;
pub use value::{Map, Number, Value};

// Derive macros, re-exported so `use serde::{Serialize, Deserialize}` pulls
// in both the traits and the derives (they live in separate namespaces).
pub use serde_derive::{Deserialize, Serialize};
