//! Table IV: experimental configurations of the training jobs.

use crate::report::Table;
use ce_ml::curve::table4_target;
use ce_models::Workload;
use serde_json::{json, Value};

/// Prints the Table IV configuration matrix.
pub fn run(_quick: bool) -> Value {
    let workloads = [
        Workload::lr_higgs(),
        Workload::svm_higgs(),
        Workload::lr_yfcc(),
        Workload::svm_yfcc(),
        Workload::mobilenet_cifar10(),
        Workload::resnet50_cifar10(),
        Workload::bert_imdb(),
    ];
    let mut table = Table::new(["Model", "Dataset", "Batch size", "Target loss", "Model MB"]);
    let mut rows = Vec::new();
    for w in &workloads {
        let target = table4_target(w.model.family, &w.dataset.name);
        table.row([
            w.model.name(),
            w.dataset.name.clone(),
            w.batch.to_string(),
            format!("{target}"),
            format!("{:.3}", w.model.model_mb),
        ]);
        rows.push(json!({
            "model": w.model.name(),
            "dataset": w.dataset.name,
            "batch": w.batch,
            "target_loss": target,
            "model_mb": w.model.model_mb,
        }));
    }
    println!("Table IV — experimental configurations\n");
    table.print();
    json!({ "table4": rows })
}

#[cfg(test)]
mod tests {
    #[test]
    fn emits_seven_workloads() {
        let v = super::run(true);
        assert_eq!(v["table4"].as_array().unwrap().len(), 7);
    }
}
