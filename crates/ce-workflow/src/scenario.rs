//! Declarative experiment scenarios: define a job as data (JSON via
//! serde), run it with one call. This is how downstream users script
//! studies without writing Rust — the CLI's `run-config` subcommand and
//! the scenario tests both consume it.
//!
//! ```json
//! {
//!   "kind": "training",
//!   "model": "mobilenet",
//!   "dataset": "cifar10",
//!   "constraint": { "budget": 30.0 },
//!   "method": "ce",
//!   "seeds": [1, 2, 3],
//!   "failure_rate": 0.05
//! }
//! ```

use crate::metrics::{TrainingReport, TuningReport};
use crate::runner::{TrainingJob, TuningJob};
use crate::{Constraint, Method, WorkflowError};
use ce_faas::PlatformConfig;
use ce_models::{AllocationSpace, Workload};
use ce_storage::StorageKind;
use ce_tuning::ShaSpec;
use serde::{Deserialize, Serialize};

/// A scenario as users write it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// `"training"` or `"tuning"`.
    pub kind: ScenarioKind,
    /// Model name: `lr`, `svm`, `mobilenet`, `resnet50`, `bert`.
    pub model: String,
    /// Dataset name: `higgs`, `yfcc`, `cifar10`, `imdb`. Defaults to the
    /// model's paper pairing when omitted.
    #[serde(default)]
    pub dataset: Option<String>,
    /// Budget or deadline.
    pub constraint: ScenarioConstraint,
    /// Scheduling method (default `ce`).
    #[serde(default)]
    pub method: Option<String>,
    /// Seeds to run (default `[42]`); results are averaged by the caller.
    #[serde(default)]
    pub seeds: Vec<u64>,
    /// Tuning only: SHA initial trials (default 256).
    #[serde(default)]
    pub trials: Option<u32>,
    /// Tuning only: epochs per stage (default 2).
    #[serde(default)]
    pub epochs_per_stage: Option<u32>,
    /// Training only: per-worker-epoch failure rate (default 0).
    #[serde(default)]
    pub failure_rate: Option<f64>,
    /// Pin every method to one storage service.
    #[serde(default)]
    pub storage: Option<String>,
}

/// Scenario type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum ScenarioKind {
    /// A model-training job.
    Training,
    /// A hyperparameter-tuning bracket.
    Tuning,
}

/// Budget-or-deadline, as users write it.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScenarioConstraint {
    /// Dollars.
    #[serde(default)]
    pub budget: Option<f64>,
    /// Seconds.
    #[serde(default)]
    pub deadline: Option<f64>,
}

/// Results of running a scenario: one report per seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ScenarioOutcome {
    /// Training reports per seed.
    Training(Vec<TrainingReport>),
    /// Tuning reports per seed.
    Tuning(Vec<TuningReport>),
}

/// Scenario validation/run errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A field value was not understood.
    Invalid(String),
    /// The underlying job failed.
    Workflow(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Invalid(what) => write!(f, "invalid scenario: {what}"),
            ScenarioError::Workflow(what) => write!(f, "scenario run failed: {what}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl Scenario {
    /// Parses a scenario from JSON.
    pub fn from_json(json: &str) -> Result<Scenario, ScenarioError> {
        serde_json::from_str(json).map_err(|e| ScenarioError::Invalid(e.to_string()))
    }

    fn workload(&self) -> Result<Workload, ScenarioError> {
        let dataset = self.dataset.as_deref();
        Ok(match (self.model.as_str(), dataset) {
            ("lr", None | Some("higgs")) => Workload::lr_higgs(),
            ("lr", Some("yfcc")) => Workload::lr_yfcc(),
            ("svm", None | Some("higgs")) => Workload::svm_higgs(),
            ("svm", Some("yfcc")) => Workload::svm_yfcc(),
            ("mobilenet", None | Some("cifar10")) => Workload::mobilenet_cifar10(),
            ("resnet50", None | Some("cifar10")) => Workload::resnet50_cifar10(),
            ("bert", None | Some("imdb")) => Workload::bert_imdb(),
            (m, d) => {
                return Err(ScenarioError::Invalid(format!(
                    "unsupported model/dataset: {m}/{d:?}"
                )))
            }
        })
    }

    fn method(&self) -> Result<Method, ScenarioError> {
        Ok(match self.method.as_deref().unwrap_or("ce") {
            "ce" | "ce-scaling" => Method::CeScaling,
            "lambdaml" => Method::LambdaMl,
            "siren" => Method::Siren,
            "cirrus" => Method::Cirrus,
            "fixed" => Method::Fixed,
            other => return Err(ScenarioError::Invalid(format!("unknown method {other}"))),
        })
    }

    fn constraint(&self) -> Result<Constraint, ScenarioError> {
        match (self.constraint.budget, self.constraint.deadline) {
            (Some(b), None) if b > 0.0 => Ok(Constraint::Budget(b)),
            (None, Some(t)) if t > 0.0 => Ok(Constraint::Deadline(t)),
            _ => Err(ScenarioError::Invalid(
                "constraint needs exactly one of a positive budget or deadline".into(),
            )),
        }
    }

    fn storage_space(&self) -> Result<Option<AllocationSpace>, ScenarioError> {
        let Some(name) = self.storage.as_deref() else {
            return Ok(None);
        };
        let kind = match name {
            "s3" => StorageKind::S3,
            "dynamodb" => StorageKind::DynamoDb,
            "elasticache" => StorageKind::ElastiCache,
            "vmps" | "vm-ps" => StorageKind::VmPs,
            other => return Err(ScenarioError::Invalid(format!("unknown storage {other}"))),
        };
        Ok(Some(AllocationSpace::aws_default().with_only_storage(kind)))
    }

    fn seeds(&self) -> Vec<u64> {
        if self.seeds.is_empty() {
            vec![42]
        } else {
            self.seeds.clone()
        }
    }

    /// Runs the scenario, one job per seed.
    pub fn run(&self) -> Result<ScenarioOutcome, ScenarioError> {
        let workload = self.workload()?;
        let method = self.method()?;
        let constraint = self.constraint()?;
        let space = self.storage_space()?;
        let map_err = |e: WorkflowError| ScenarioError::Workflow(e.to_string());
        match self.kind {
            ScenarioKind::Training => {
                let mut reports = Vec::new();
                for seed in self.seeds() {
                    let mut job = TrainingJob::new(workload.clone(), constraint).with_seed(seed);
                    if let Some(rate) = self.failure_rate {
                        job = job.with_platform_config(PlatformConfig {
                            failure_rate: rate,
                            ..PlatformConfig::default()
                        });
                    }
                    if let Some(space) = &space {
                        job = job.with_space(space.clone());
                    }
                    reports.push(job.run(method).map_err(map_err)?);
                }
                Ok(ScenarioOutcome::Training(reports))
            }
            ScenarioKind::Tuning => {
                let trials = self.trials.unwrap_or(256);
                let epochs = self.epochs_per_stage.unwrap_or(2);
                let sha = ShaSpec::new(trials, 2, epochs);
                let mut reports = Vec::new();
                for seed in self.seeds() {
                    let mut job = TuningJob::new(workload.clone(), sha, constraint).with_seed(seed);
                    if let Some(space) = &space {
                        job = job.with_space(space.clone());
                    }
                    reports.push(job.run(method).map_err(map_err)?);
                }
                Ok(ScenarioOutcome::Tuning(reports))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_scenario_from_json_runs() {
        let scenario = Scenario::from_json(
            r#"{
                "kind": "training",
                "model": "mobilenet",
                "constraint": { "budget": 40.0 },
                "seeds": [1, 2]
            }"#,
        )
        .unwrap();
        match scenario.run().unwrap() {
            ScenarioOutcome::Training(reports) => {
                assert_eq!(reports.len(), 2);
                assert!(reports.iter().all(|r| r.epochs > 0));
            }
            other => panic!("expected training outcome, got {other:?}"),
        }
    }

    #[test]
    fn tuning_scenario_with_pinned_storage() {
        let scenario = Scenario::from_json(
            r#"{
                "kind": "tuning",
                "model": "lr",
                "dataset": "higgs",
                "constraint": { "deadline": 100000.0 },
                "trials": 64,
                "storage": "s3"
            }"#,
        )
        .unwrap();
        match scenario.run().unwrap() {
            ScenarioOutcome::Tuning(reports) => {
                assert_eq!(reports.len(), 1);
                assert!(reports[0]
                    .stages
                    .iter()
                    .all(|s| s.alloc.storage == StorageKind::S3));
            }
            other => panic!("expected tuning outcome, got {other:?}"),
        }
    }

    #[test]
    fn failure_rate_flows_through() {
        let scenario = Scenario::from_json(
            r#"{
                "kind": "training",
                "model": "mobilenet",
                "constraint": { "budget": 60.0 },
                "failure_rate": 0.2,
                "seeds": [3]
            }"#,
        )
        .unwrap();
        let clean = Scenario {
            failure_rate: None,
            ..scenario.clone()
        };
        let jct = |o: ScenarioOutcome| match o {
            ScenarioOutcome::Training(r) => r[0].jct_s,
            _ => unreachable!(),
        };
        assert!(jct(scenario.run().unwrap()) > jct(clean.run().unwrap()));
    }

    #[test]
    fn invalid_fields_are_reported() {
        let bad_model = Scenario::from_json(
            r#"{"kind": "training", "model": "gpt5", "constraint": {"budget": 1.0}}"#,
        )
        .unwrap();
        assert!(matches!(bad_model.run(), Err(ScenarioError::Invalid(_))));

        let bad_constraint =
            Scenario::from_json(r#"{"kind": "training", "model": "lr", "constraint": {}}"#)
                .unwrap();
        assert!(matches!(
            bad_constraint.run(),
            Err(ScenarioError::Invalid(_))
        ));

        let both = Scenario::from_json(
            r#"{"kind": "training", "model": "lr",
                "constraint": {"budget": 1.0, "deadline": 2.0}}"#,
        )
        .unwrap();
        assert!(matches!(both.run(), Err(ScenarioError::Invalid(_))));

        assert!(Scenario::from_json("not json").is_err());
    }

    #[test]
    fn scenario_round_trips_through_serde() {
        let s = Scenario {
            kind: ScenarioKind::Tuning,
            model: "lr".into(),
            dataset: Some("higgs".into()),
            constraint: ScenarioConstraint {
                budget: Some(10.0),
                deadline: None,
            },
            method: Some("ce".into()),
            seeds: vec![1],
            trials: Some(64),
            epochs_per_stage: None,
            failure_rate: None,
            storage: None,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back.model, "lr");
        assert_eq!(back.trials, Some(64));
    }
}
