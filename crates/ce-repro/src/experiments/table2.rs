//! Table II: JCT and cost of training under Cirrus-style static
//! allocations with each storage service, normalized to S3.
//!
//! Paper shape: with 10 functions and a small model (LR), DynamoDB is
//! both faster and cheaper than S3; with 50 functions or larger models
//! the low-latency services (ElastiCache, VM-PS) win; DynamoDB is N/A
//! when the model exceeds its 400 KB item limit.

use crate::report::Table;
use ce_models::{Allocation, CostModel, Environment, Workload};
use ce_storage::StorageKind;
use serde_json::{json, Value};

/// Computes the normalized JCT/cost matrix.
pub fn run(_quick: bool) -> Value {
    let env = Environment::aws_default();
    let workloads = [Workload::lr_higgs(), Workload::mobilenet_cifar10()];
    let mut out = Vec::new();

    println!("Table II — storage services under static allocations, normalized to S3\n");
    for n in [10u32, 50] {
        let alloc_of = |s: StorageKind| Allocation::new(n, 1769, s);
        let mut table = Table::new([
            "Storage",
            "LR JCT",
            "LR cost",
            "MobileNet JCT",
            "MobileNet cost",
        ]);
        let mut rows = Vec::new();
        // S3 reference values per workload.
        let cost_model = CostModel::new(&env);
        let reference: Vec<(f64, f64)> = workloads
            .iter()
            .map(|w| {
                let (t, c) = cost_model
                    .epoch_estimate(w, &alloc_of(StorageKind::S3))
                    .expect("catalog");
                (t.total(), c.total())
            })
            .collect();
        for s in StorageKind::ALL {
            let mut cells = vec![s.to_string()];
            let mut row = json!({ "n": n, "storage": s.to_string() });
            for (wi, w) in workloads.iter().enumerate() {
                let spec = env.storage.get(s).expect("catalog");
                if !spec.supports_model(w.model.model_mb) {
                    cells.push("N/A".into());
                    cells.push("N/A".into());
                    row[format!("{}_jct", w.model.name())] = Value::Null;
                    row[format!("{}_cost", w.model.name())] = Value::Null;
                    continue;
                }
                let (t, c) = cost_model.epoch_estimate(w, &alloc_of(s)).expect("catalog");
                let jct_norm = t.total() / reference[wi].0;
                let cost_norm = c.total() / reference[wi].1;
                cells.push(format!("{jct_norm:.2}"));
                cells.push(format!("{cost_norm:.2}"));
                row[format!("{}_jct", w.model.name())] = json!(jct_norm);
                row[format!("{}_cost", w.model.name())] = json!(cost_norm);
            }
            table.row(cells);
            rows.push(row);
        }
        println!("{n} functions / 1769 MB:");
        table.print();
        println!();
        out.extend(rows);
    }
    json!({ "table2": out })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let v = run(true);
        let rows = v["table2"].as_array().unwrap();
        let get = |n: u64, s: &str, key: &str| -> Option<f64> {
            rows.iter()
                .find(|r| r["n"].as_u64() == Some(n) && r["storage"] == s)
                .and_then(|r| r[key].as_f64())
        };
        // DynamoDB N/A for MobileNet.
        assert!(get(10, "DynamoDB", "MobileNet_jct").is_none());
        // DynamoDB faster than S3 for LR at 10 functions (paper: 0.83).
        assert!(get(10, "DynamoDB", "LR_jct").unwrap() < 1.0);
        // VM-PS/ElastiCache faster than S3 for MobileNet at 50 functions.
        assert!(get(50, "VM-PS", "MobileNet_jct").unwrap() < 1.0);
        assert!(get(50, "ElastiCache", "MobileNet_jct").unwrap() < 1.0);
        // S3 is its own reference.
        assert_eq!(get(10, "S3", "LR_jct").unwrap(), 1.0);
    }
}
