//! Deterministic, splittable randomness.
//!
//! Every stochastic quantity in the reproduction (SGD convergence noise,
//! compute/network jitter, RL exploration) flows from a [`SimRng`], which is
//! an xoshiro256** generator seeded through SplitMix64. `SimRng::derive`
//! splits an independent child stream from a label, so subsystems cannot
//! perturb each other's sequences when the call order changes — a property
//! the determinism integration tests rely on.

use serde::{Deserialize, Serialize};

/// SplitMix64 step, used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** PRNG.
///
/// Not cryptographically secure; chosen for speed, quality, and exact
/// reproducibility across platforms.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
    /// Immutable identity of this stream; `derive` mixes from this rather
    /// than the mutable state so children are independent of how many
    /// numbers the parent has produced.
    stream_id: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s, stream_id: seed }
    }

    /// Derives an independent child stream from a textual label.
    ///
    /// The child's sequence depends only on the parent seed and the label,
    /// not on how many numbers the parent has produced.
    pub fn derive(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the parent's initial state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SimRng::new(h ^ self.stream_id.rotate_left(17))
    }

    /// Derives an independent child stream from an integer index.
    pub fn derive_idx(&self, label: &str, idx: u64) -> SimRng {
        let base = self.derive(label);
        SimRng::new(base.stream_id ^ (idx.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index: empty range");
        // Rejection-free multiply-shift; bias is negligible for n << 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal sample (Box–Muller; one draw per call, second
    /// discarded for simplicity — this code is not on a hot path).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by offsetting into (0, 1].
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Multiplicative lognormal jitter with unit median.
    ///
    /// `sigma` is the standard deviation of the underlying normal; e.g.
    /// `sigma = 0.03` yields roughly ±3 % noise. Used to perturb compute and
    /// network durations in the platform simulator so that measured values
    /// deviate from the analytical model by a few percent (Figs. 19–20).
    pub fn lognormal_jitter(&mut self, sigma: f64) -> f64 {
        (sigma * self.normal()).exp()
    }

    /// Returns `true` with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_order_independent() {
        let parent = SimRng::new(7);
        let mut c1 = parent.derive("loss");
        // Burn numbers on a clone of the parent; derive must not care.
        let mut burned = parent.clone();
        for _ in 0..10 {
            burned.next_u64();
        }
        let mut c2 = burned.derive("loss");
        for _ in 0..16 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn derive_labels_independent() {
        let parent = SimRng::new(7);
        let mut a = parent.derive("alpha");
        let mut b = parent.derive("beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_idx_streams_differ() {
        let parent = SimRng::new(7);
        let mut a = parent.derive_idx("trial", 0);
        let mut b = parent.derive_idx("trial", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_close_to_half() {
        let mut rng = SimRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_jitter_median_near_one() {
        let mut rng = SimRng::new(9);
        let mut samples: Vec<f64> = (0..10_001).map(|_| rng.lognormal_jitter(0.05)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 1.0).abs() < 0.01, "median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn gen_index_bounds() {
        let mut rng = SimRng::new(13);
        for _ in 0..10_000 {
            assert!(rng.gen_index(7) < 7);
        }
        // n = 1 always yields 0.
        assert_eq!(rng.gen_index(1), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SimRng::new(19);
        assert!(!(0..100).any(|_| rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }
}
