//! The CLI's `--metrics` JSONL stream must be byte-identical across runs
//! with the same seed: determinism is the repo's contract for every
//! reproduction claim, and the metrics dump is where drift would show.

use std::path::PathBuf;
use std::process::Command;

/// Runs the `ce-scaling` binary with `args` plus `--metrics <tmp>`, and
/// returns the metrics file's bytes. Panics (with stderr) on failure.
fn metrics_bytes(args: &[&str], tag: &str) -> Vec<u8> {
    let mut path = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    path.push(format!("metrics_{tag}.jsonl"));
    let out = Command::new(env!("CARGO_BIN_EXE_ce-scaling"))
        .args(args)
        .arg("--metrics")
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "ce-scaling {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&path).expect("metrics file written");
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn train_metrics_are_byte_identical_per_seed() {
    let args = [
        "train",
        "--model",
        "lr",
        "--dataset",
        "higgs",
        "--budget",
        "20",
        "--seed",
        "7",
    ];
    let a = metrics_bytes(&args, "train_a");
    let b = metrics_bytes(&args, "train_b");
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must produce byte-identical JSONL");

    let other = metrics_bytes(
        &[
            "train",
            "--model",
            "lr",
            "--dataset",
            "higgs",
            "--budget",
            "20",
            "--seed",
            "8",
        ],
        "train_c",
    );
    assert_ne!(a, other, "a different seed must change the stream");
}

#[test]
fn cluster_metrics_are_byte_identical_per_seed() {
    let args = [
        "cluster", "--jobs", "12", "--rate", "30", "--policy", "edf", "--quota", "40", "--seed",
        "11",
    ];
    let a = metrics_bytes(&args, "cluster_a");
    let b = metrics_bytes(&args, "cluster_b");
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must produce byte-identical fleet JSONL");
}

#[test]
fn chaotic_train_metrics_are_byte_identical_per_seed() {
    // A generous budget: the run must converge despite crash chaos, or
    // cmd_train exits non-zero before the metrics dump.
    let args = [
        "train",
        "--model",
        "lr",
        "--dataset",
        "higgs",
        "--budget",
        "200",
        "--seed",
        "7",
        "--chaos",
        "crash:0.1@0..inf",
        "--recovery",
        "checkpoint",
        "--checkpoint-every",
        "5",
    ];
    let a = metrics_bytes(&args, "chaos_train_a");
    let b = metrics_bytes(&args, "chaos_train_b");
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "same seed + same --chaos spec must produce byte-identical JSONL"
    );
}

#[test]
fn zero_fault_chaos_schedule_matches_the_clean_run() {
    let clean = [
        "train",
        "--model",
        "lr",
        "--dataset",
        "higgs",
        "--budget",
        "20",
        "--seed",
        "7",
    ];
    let quiet = [
        "train",
        "--model",
        "lr",
        "--dataset",
        "higgs",
        "--budget",
        "20",
        "--seed",
        "7",
        "--chaos",
        "crash:0@0..inf;coldspike:x1@0..inf",
    ];
    assert_eq!(
        metrics_bytes(&clean, "quiet_clean"),
        metrics_bytes(&quiet, "quiet_chaos"),
        "a zero-fault schedule must reproduce the clean run bit-for-bit"
    );
}

#[test]
fn serve_metrics_are_byte_identical_per_seed() {
    let args = [
        "serve",
        "--arrivals",
        "diurnal",
        "--rps",
        "25",
        "--duration",
        "300",
        "--autoscaler",
        "target",
        "--keepalive",
        "adaptive",
        "--slo-ms",
        "800",
        "--seed",
        "11",
    ];
    let a = metrics_bytes(&args, "serve_a");
    let b = metrics_bytes(&args, "serve_b");
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must produce byte-identical serve JSONL");

    let mut other = args;
    other[other.len() - 1] = "12";
    assert_ne!(a, metrics_bytes(&other, "serve_c"), "seed must matter");
}

#[test]
fn serve_trace_replay_reproduces_the_original_run() {
    // A run that writes its own arrival log, then a second run replaying
    // that log through `--arrivals trace:<path>`: per-request randomness
    // is keyed by request index, so the replay must be byte-identical.
    let mut log = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    log.push("serve_replay_arrivals.jsonl");
    let log_str = log.to_str().expect("utf-8 tmpdir");
    let original = metrics_bytes(
        &[
            "serve",
            "--arrivals",
            "bursty",
            "--rps",
            "30",
            "--duration",
            "300",
            "--autoscaler",
            "prewarm",
            "--keepalive",
            "histogram",
            "--seed",
            "23",
            "--arrival-log",
            log_str,
        ],
        "serve_replay_orig",
    );
    let trace_arg = format!("trace:{log_str}");
    let replayed = metrics_bytes(
        &[
            "serve",
            "--arrivals",
            &trace_arg,
            "--duration",
            "300",
            "--autoscaler",
            "prewarm",
            "--keepalive",
            "histogram",
            "--seed",
            "23",
        ],
        "serve_replay_back",
    );
    assert!(!original.is_empty());
    assert_eq!(
        original, replayed,
        "trace replay of a run's own arrival log must reproduce its metrics"
    );
    std::fs::remove_file(&log).ok();
}

#[test]
fn zoo_serve_metrics_are_byte_identical_per_seed() {
    let args = [
        "serve",
        "--arrivals",
        "zoo:bursty",
        "--duration",
        "180",
        "--autoscaler",
        "qlearn",
        "--keepalive",
        "adaptive",
        "--seed",
        "11",
    ];
    let a = metrics_bytes(&args, "zoo_a");
    let b = metrics_bytes(&args, "zoo_b");
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must produce byte-identical zoo JSONL");

    let mut other = args;
    other[other.len() - 1] = "12";
    assert_ne!(a, metrics_bytes(&other, "zoo_c"), "seed must matter");
}

#[test]
fn zoo_trace_replay_reproduces_the_original_run() {
    // A zoo run that writes its own arrival log, then a second run
    // replaying that log through `--arrivals trace:<path>`: the zoo
    // generator emits the ordinary ascending arrival schedule, so the
    // replay must be byte-identical.
    let mut log = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    log.push("zoo_replay_arrivals.jsonl");
    let log_str = log.to_str().expect("utf-8 tmpdir");
    let original = metrics_bytes(
        &[
            "serve",
            "--arrivals",
            "zoo:mixed",
            "--duration",
            "180",
            "--autoscaler",
            "qlearn",
            "--keepalive",
            "adaptive",
            "--seed",
            "42",
            "--arrival-log",
            log_str,
        ],
        "zoo_replay_orig",
    );
    let trace_arg = format!("trace:{log_str}");
    let replayed = metrics_bytes(
        &[
            "serve",
            "--arrivals",
            &trace_arg,
            "--duration",
            "180",
            "--autoscaler",
            "qlearn",
            "--keepalive",
            "adaptive",
            "--seed",
            "42",
        ],
        "zoo_replay_back",
    );
    assert!(!original.is_empty());
    assert_eq!(
        original, replayed,
        "trace replay of a zoo run's own arrival log must reproduce its metrics"
    );
    std::fs::remove_file(&log).ok();
}

#[test]
fn zero_traffic_serve_run_emits_nothing_and_spends_nothing() {
    let out = metrics_bytes(
        &["serve", "--rps", "0", "--duration", "600", "--seed", "42"],
        "serve_zero",
    );
    assert!(
        out.is_empty(),
        "zero arrivals must emit no metrics or events, got:\n{}",
        String::from_utf8_lossy(&out)
    );
}

#[test]
fn chaotic_serve_metrics_are_byte_identical_per_seed() {
    let args = [
        "serve",
        "--arrivals",
        "poisson",
        "--rps",
        "20",
        "--duration",
        "300",
        "--seed",
        "42",
        "--chaos",
        "coldspike:x4@0..60;throttle:0.3@100..160;outage:s3@200..230",
    ];
    let a = metrics_bytes(&args, "chaos_serve_a");
    let b = metrics_bytes(&args, "chaos_serve_b");
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed + same --chaos spec must match");
}

#[test]
fn resilient_serve_metrics_are_byte_identical_per_seed() {
    let args = [
        "serve",
        "--rps",
        "20",
        "--duration",
        "120",
        "--seed",
        "42",
        "--chaos",
        "crash:0.3@10..60;coldspike:x4@0..inf",
        "--timeout-ms",
        "2000",
        "--retries",
        "2",
        "--retry-budget",
        "0.5",
        "--hedge",
        "p95",
        "--breaker",
        "0.5",
        "--brownout",
        "0.6",
        "--queue-cap",
        "500",
    ];
    let a = metrics_bytes(&args, "resilient_serve_a");
    let b = metrics_bytes(&args, "resilient_serve_b");
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "same seed + same resilience flags must produce byte-identical JSONL"
    );
    let text = String::from_utf8_lossy(&a);
    assert!(
        text.contains("resilience.attempts_total"),
        "resilient runs must export the resilience metric group"
    );
}

#[test]
fn resilient_lifecycle_metrics_are_byte_identical_per_seed() {
    let args = [
        "lifecycle",
        "--tenants",
        "2",
        "--duration",
        "90",
        "--rps",
        "4",
        "--quota",
        "20",
        "--seed",
        "23",
        "--chaos",
        "crash:0.4@10..60",
        "--retries",
        "2",
        "--hedge",
        "100",
        "--breaker",
        "0.6",
    ];
    let a = metrics_bytes(&args, "resilient_lifecycle_a");
    let b = metrics_bytes(&args, "resilient_lifecycle_b");
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "same seed + same resilience flags must produce byte-identical lifecycle JSONL"
    );
}

#[test]
fn chaotic_cluster_metrics_are_byte_identical_per_seed() {
    let args = [
        "cluster",
        "--jobs",
        "12",
        "--rate",
        "30",
        "--policy",
        "edf",
        "--quota",
        "40",
        "--seed",
        "11",
        "--chaos",
        "outage:s3@300..900;crash:0.05@0..inf",
        "--recovery",
        "checkpoint",
        "--checkpoint-every",
        "5",
    ];
    let a = metrics_bytes(&args, "chaos_cluster_a");
    let b = metrics_bytes(&args, "chaos_cluster_b");
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "same seed + same --chaos spec must produce byte-identical fleet JSONL"
    );
}
