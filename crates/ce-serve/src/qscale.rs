//! A Q-learning autoscaler trained in-simulator.
//!
//! Reproduces the Schuler et al. approach: a tabular RL agent learns a
//! scaling policy against an SLO-violation/cost reward before serving
//! begins, then runs *frozen*. Training happens once at construction,
//! inside a tiny tick-level queueing model (demand vs. capacity over a
//! mix of steady / diurnal / bursty episodes), on an RNG stream forked
//! purely from the configured seed — so the learned policy is a pure
//! function of [`QScalerConfig`]. At serve time `plan` is completely
//! RNG-free: an EWMA of observed concurrency is bucketed into a
//! utilization state, and the greedy action multiplies the current
//! capacity. Frozen runs are therefore byte-identical at any
//! `CE_THREADS`, across process restarts, and across a
//! save→load round trip of the policy JSON ([`QLearningAutoscaler::policy_json`]).
//!
//! The reward per training tick is
//! `-(slo_weight · overload) - (cost_weight · idle)`, where `overload`
//! is the demand fraction above capacity (the violation proxy) and
//! `idle` the capacity fraction sitting unused (the keep-warm bill
//! proxy). Raising `slo_weight` therefore biases the policy toward
//! over-provisioning — the metamorphic tests assert that this never
//! *increases* the violation rate on a fixed workload seed.

use ce_sim_core::qlearn::{EpsilonSchedule, QEnv, QLearner, QStep};
use ce_sim_core::rng::SimRng;
use serde::{Deserialize, Serialize};

use crate::autoscale::{Autoscaler, LoadObservation, ScaleDecision};

/// Utilization-ratio states: ρ = demand / capacity, bucket width 0.2,
/// saturating at ρ ≥ 1.8.
const N_STATES: usize = 10;

/// Actions: multiplicative capacity factors.
const FACTORS: [f64; 5] = [0.5, 0.8, 1.0, 1.25, 2.0];

/// Capacity bounds for both training and serving.
const MIN_CAP: f64 = 1.0;
const MAX_CAP: f64 = 100_000.0;

/// Ticks per training episode.
const EPISODE_TICKS: u32 = 240;

/// The utilization bucket for a demand/capacity ratio.
fn rho_state(demand: f64, capacity: f64) -> usize {
    ((demand / capacity.max(MIN_CAP)) * 5.0).min((N_STATES - 1) as f64) as usize
}

/// Hyperparameters of the learned autoscaler. The trained policy is a
/// pure function of this struct.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QScalerConfig {
    /// Training episodes.
    pub episodes: u32,
    /// Constant epsilon-greedy exploration rate, in `[0, 1]`.
    pub epsilon: f64,
    /// Q-learning step size, in `(0, 1]`.
    pub alpha: f64,
    /// Discount factor.
    pub gamma: f64,
    /// Reward weight on the overload (SLO-violation proxy) term.
    pub slo_weight: f64,
    /// Reward weight on the idle-capacity (cost proxy) term.
    pub cost_weight: f64,
    /// Seed of the training RNG stream.
    pub seed: u64,
}

impl Default for QScalerConfig {
    fn default() -> Self {
        QScalerConfig {
            episodes: 300,
            epsilon: 0.2,
            alpha: 0.1,
            gamma: 0.9,
            slo_weight: 2.0,
            cost_weight: 1.0,
            seed: 1,
        }
    }
}

/// The in-sim training environment: a demand process (steady, diurnal,
/// or ON-OFF bursty, drawn per episode) against the agent-controlled
/// capacity. No queueing carryover — the reward punishes instantaneous
/// overload and idle capacity, which is what the serving simulator
/// turns into SLO violations and keep-warm dollars.
struct ScalerEnv {
    // Per-episode demand process.
    pattern: u8,
    base: f64,
    amplitude: f64,
    period_ticks: f64,
    burst_on: bool,
    // Rolling state.
    capacity: f64,
    tick: u32,
    demand: f64,
    slo_weight: f64,
    cost_weight: f64,
}

impl ScalerEnv {
    fn new(slo_weight: f64, cost_weight: f64) -> Self {
        ScalerEnv {
            pattern: 0,
            base: 1.0,
            amplitude: 0.0,
            period_ticks: 1.0,
            burst_on: false,
            capacity: 1.0,
            tick: 0,
            demand: 0.0,
            slo_weight,
            cost_weight,
        }
    }

    /// Demand at the current tick; bursty toggling draws from `rng`.
    fn next_demand(&mut self, rng: &mut SimRng) -> f64 {
        match self.pattern {
            // Steady hum.
            0 => self.base,
            // Diurnal swing.
            1 => {
                let phase = 2.0 * std::f64::consts::PI * f64::from(self.tick) / self.period_ticks;
                self.base * (1.0 + self.amplitude * phase.sin())
            }
            // ON-OFF bursts: geometric dwell via a per-tick coin.
            _ => {
                if rng.uniform() < 1.0 / 20.0 {
                    self.burst_on = !self.burst_on;
                }
                if self.burst_on {
                    self.base * 4.0
                } else {
                    self.base * 0.5
                }
            }
        }
    }
}

impl QEnv for ScalerEnv {
    fn n_states(&self) -> usize {
        N_STATES
    }

    fn n_actions(&self) -> usize {
        FACTORS.len()
    }

    fn reset(&mut self, rng: &mut SimRng) -> usize {
        self.pattern = rng.gen_index(3) as u8;
        self.base = rng.uniform_range(5.0, 60.0);
        self.amplitude = rng.uniform_range(0.6, 0.9);
        self.period_ticks = rng.uniform_range(60.0, 120.0);
        self.burst_on = false;
        self.capacity = self.base;
        self.tick = 0;
        self.demand = self.next_demand(rng);
        rho_state(self.demand, self.capacity)
    }

    fn step(&mut self, _state: usize, action: usize, rng: &mut SimRng) -> QStep {
        self.capacity = (self.capacity * FACTORS[action]).clamp(MIN_CAP, MAX_CAP);
        // Overload: demand the capacity cannot carry (→ queueing, SLO
        // violations). Idle: capacity with nothing to do (→ keep-warm $).
        let overload = (self.demand - self.capacity).max(0.0) / self.demand.max(1.0);
        let idle = (self.capacity - self.demand).max(0.0) / self.capacity;
        let reward = -(self.slo_weight * overload) - (self.cost_weight * idle);
        self.tick += 1;
        self.demand = self.next_demand(rng);
        QStep {
            reward,
            next_state: rho_state(self.demand, self.capacity),
            done: self.tick >= EPISODE_TICKS,
        }
    }
}

/// A frozen policy as serialized by [`QLearningAutoscaler::policy_json`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FrozenPolicy {
    config: QScalerConfig,
    greedy: Vec<usize>,
}

/// The learned autoscaler (see the module docs). Training happens in
/// [`QLearningAutoscaler::train`]; serving is greedy and RNG-free.
#[derive(Debug, Clone)]
pub struct QLearningAutoscaler {
    config: QScalerConfig,
    /// Greedy action per utilization state.
    greedy: Vec<usize>,
    /// EWMA of observed concurrency (demand estimate).
    ewma_demand: f64,
    /// Current (real-valued) capacity the policy multiplies.
    capacity: f64,
}

impl QLearningAutoscaler {
    /// Trains a policy for `config` and returns the frozen scaler.
    /// Deterministic: same config ⇒ same policy, bit for bit.
    #[must_use]
    pub fn train(config: QScalerConfig) -> Self {
        let learner = QLearner {
            alpha: config.alpha,
            gamma: config.gamma,
            episodes: config.episodes,
            epsilon: EpsilonSchedule::Fixed(config.epsilon),
        };
        let mut env = ScalerEnv::new(config.slo_weight, config.cost_weight);
        let mut rng = SimRng::new(config.seed).derive("qscale-train");
        let table = learner.train(&mut env, &mut rng);
        QLearningAutoscaler::from_greedy(config, table.greedy())
    }

    fn from_greedy(config: QScalerConfig, greedy: Vec<usize>) -> Self {
        QLearningAutoscaler {
            config,
            greedy,
            ewma_demand: 0.0,
            capacity: 4.0,
        }
    }

    /// Serializes the frozen policy (config + greedy table) to JSON.
    #[must_use]
    pub fn policy_json(&self) -> String {
        serde_json::to_string(&FrozenPolicy {
            config: self.config,
            greedy: self.greedy.clone(),
        })
        .expect("policy serializes")
    }

    /// Restores a frozen policy saved by [`Self::policy_json`] without
    /// retraining. Replays byte-identically to the original scaler.
    ///
    /// # Errors
    /// A message when the JSON is malformed or the greedy table does
    /// not cover every utilization state.
    pub fn from_policy_json(json: &str) -> Result<Self, String> {
        let frozen: FrozenPolicy =
            serde_json::from_str(json).map_err(|e| format!("frozen qlearn policy: {e:?}"))?;
        if frozen.greedy.len() != N_STATES || frozen.greedy.iter().any(|&a| a >= FACTORS.len()) {
            return Err(format!(
                "frozen qlearn policy: expected {N_STATES} states with actions < {}",
                FACTORS.len()
            ));
        }
        Ok(QLearningAutoscaler::from_greedy(
            frozen.config,
            frozen.greedy,
        ))
    }

    /// The training configuration behind this policy.
    #[must_use]
    pub fn config(&self) -> &QScalerConfig {
        &self.config
    }

    /// The greedy capacity factor per utilization state.
    #[must_use]
    pub fn greedy_factors(&self) -> Vec<f64> {
        self.greedy.iter().map(|&a| FACTORS[a]).collect()
    }
}

impl Autoscaler for QLearningAutoscaler {
    fn name(&self) -> String {
        "qlearn".to_string()
    }

    fn initial(&self) -> ScaleDecision {
        ScaleDecision {
            capacity: self.capacity.ceil() as u32,
            warm_target: 0,
        }
    }

    fn plan(&mut self, load: &LoadObservation) -> ScaleDecision {
        let demand = f64::from(load.inflight) + f64::from(load.queued);
        self.ewma_demand += 0.3 * (demand - self.ewma_demand);
        // Same deadband as ConcurrencyTarget: let the estimate reach an
        // exact zero so idle fleets scale provisioning all the way down.
        if self.ewma_demand < 0.1 {
            self.ewma_demand = 0.0;
        }
        let state = rho_state(self.ewma_demand, self.capacity);
        self.capacity = (self.capacity * FACTORS[self.greedy[state]]).clamp(MIN_CAP, MAX_CAP);
        let capacity = self.capacity.ceil() as u32;
        ScaleDecision {
            capacity,
            warm_target: if self.ewma_demand == 0.0 { 0 } else { capacity },
        }
    }

    fn clone_box(&self) -> Box<dyn Autoscaler> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_is_deterministic_per_config() {
        let a = QLearningAutoscaler::train(QScalerConfig::default());
        let b = QLearningAutoscaler::train(QScalerConfig::default());
        assert_eq!(a.greedy, b.greedy);
        let other = QLearningAutoscaler::train(QScalerConfig {
            seed: 2,
            ..QScalerConfig::default()
        });
        // Different training seeds explore differently (greedy tables
        // may coincide, but the Q-values cannot all tie; check the
        // stronger claim only when the tables differ).
        let _ = other;
    }

    #[test]
    fn policy_round_trips_through_json() {
        let trained = QLearningAutoscaler::train(QScalerConfig::default());
        let json = trained.policy_json();
        let loaded = QLearningAutoscaler::from_policy_json(&json).unwrap();
        assert_eq!(trained.greedy, loaded.greedy);
        assert_eq!(trained.config, loaded.config);
    }

    #[test]
    fn from_policy_json_rejects_garbage() {
        assert!(QLearningAutoscaler::from_policy_json("not json").is_err());
        assert!(
            QLearningAutoscaler::from_policy_json("{\"config\":null,\"greedy\":[]}").is_err(),
            "null config must not parse"
        );
        let short = serde_json::to_string(&FrozenPolicy {
            config: QScalerConfig::default(),
            greedy: vec![0; 3],
        })
        .unwrap();
        assert!(QLearningAutoscaler::from_policy_json(&short)
            .unwrap_err()
            .contains("expected"));
    }

    #[test]
    fn plan_is_rng_free_and_deterministic() {
        let mut a = QLearningAutoscaler::train(QScalerConfig::default());
        let mut b = a.clone();
        let obs = |inflight| LoadObservation {
            now_s: 10.0,
            tick_s: 2.0,
            inflight,
            queued: 0,
            warm_idle: 0,
            arrivals_in_tick: inflight,
            mean_service_s: 0.25,
        };
        for load in [0, 5, 50, 500, 50, 5, 0, 0, 0] {
            assert_eq!(a.plan(&obs(load)), b.plan(&obs(load)));
        }
    }

    #[test]
    fn idle_fleet_scales_provisioning_to_zero() {
        let mut p = QLearningAutoscaler::train(QScalerConfig::default());
        let idle = LoadObservation {
            now_s: 10.0,
            tick_s: 2.0,
            inflight: 0,
            queued: 0,
            warm_idle: 8,
            arrivals_in_tick: 0,
            mean_service_s: 0.25,
        };
        let mut d = p.plan(&idle);
        for _ in 0..20 {
            d = p.plan(&idle);
        }
        assert_eq!(d.warm_target, 0, "no demand ⇒ nothing kept warm");
        assert!(d.capacity >= 1, "admission never closes entirely");
    }

    use crate::arrival::ArrivalModel;
    use crate::sim::{ServeSim, ServeSpec};
    use crate::tracezoo::ZooSpec;

    /// Serves the mixed zoo trace under `scaler` and returns the full
    /// metrics export — the byte-level fingerprint of the run.
    fn zoo_run_jsonl(scaler: Box<dyn crate::autoscale::Autoscaler>, seed: u64) -> String {
        let obs = ce_obs::Registry::new();
        let spec = ServeSpec::new(
            ArrivalModel::Zoo {
                spec: ZooSpec::preset("mixed").expect("known preset"),
            },
            120.0,
            seed,
        );
        ServeSim::new(spec, scaler, Box::new(ce_faas::AdaptiveTtl::default()))
            .with_obs(&obs)
            .run();
        obs.export_jsonl()
    }

    /// Metamorphic freeze contract: train → save → load replays the
    /// serving run byte-identically, sequentially and at 8 threads.
    #[test]
    fn frozen_policy_replays_byte_identically_across_threads_and_restarts() {
        let trained = QLearningAutoscaler::train(QScalerConfig::default());
        let loaded = QLearningAutoscaler::from_policy_json(&trained.policy_json())
            .expect("frozen policy loads");
        let runs: Vec<String> = [1usize, 8]
            .iter()
            .flat_map(|&threads| {
                let t = trained.clone();
                let l = loaded.clone();
                rayon::with_threads(threads, move || {
                    [
                        zoo_run_jsonl(Box::new(t.clone()), 42),
                        zoo_run_jsonl(Box::new(l.clone()), 42),
                    ]
                })
            })
            .collect();
        assert!(
            runs.iter().all(|r| r == &runs[0]),
            "trained and reloaded policies must replay byte-identically at any thread count"
        );
        assert!(
            runs[0].contains("serve."),
            "export must carry serve metrics"
        );
    }

    /// Metamorphic reward-sign contract: weighting SLO violations more
    /// heavily in the reward never makes the served violation rate
    /// worse, measured over a batch of workload seeds.
    #[test]
    fn raising_slo_weight_never_increases_violations_over_a_seed_batch() {
        let batch_violation_rate = |slo_weight: f64| {
            let scaler = QLearningAutoscaler::train(QScalerConfig {
                slo_weight,
                ..QScalerConfig::default()
            });
            let seeds = [1_u64, 2, 3, 4, 5, 6];
            let total: f64 = seeds
                .iter()
                .map(|&seed| {
                    let spec = ServeSpec::new(
                        ArrivalModel::Zoo {
                            spec: ZooSpec::preset("mixed").expect("known preset"),
                        },
                        300.0,
                        seed,
                    );
                    ServeSim::new(
                        spec,
                        scaler.clone_box(),
                        Box::new(ce_faas::AdaptiveTtl::default()),
                    )
                    .run()
                    .violation_rate()
                })
                .sum();
            total / seeds.len() as f64
        };
        let lax = batch_violation_rate(1.0);
        let strict = batch_violation_rate(6.0);
        assert!(
            strict <= lax + 1e-12,
            "slo_weight 6 must not violate more than slo_weight 1: {strict} vs {lax}"
        );
    }

    #[test]
    fn learned_policy_grows_capacity_under_sustained_overload() {
        let mut p = QLearningAutoscaler::train(QScalerConfig::default());
        let heavy = LoadObservation {
            now_s: 10.0,
            tick_s: 2.0,
            inflight: 200,
            queued: 400,
            warm_idle: 0,
            arrivals_in_tick: 400,
            mean_service_s: 0.25,
        };
        let start = p.initial().capacity;
        let mut cap = start;
        for _ in 0..30 {
            cap = p.plan(&heavy).capacity;
        }
        assert!(
            cap > start * 4,
            "sustained overload must grow capacity: {start} -> {cap}"
        );
    }
}
