//! Figs. 16–17: CE-scaling vs Siren vs Cirrus when *all* methods are
//! pinned to the same external storage (S3, then VM-PS), for MobileNet
//! on Cifar10.
//!
//! This isolates CE-scaling's allocation quality from its storage choice:
//! the paper finds CE still wins on both JCT and cost, because it
//! allocates the "exact" resources per stage (tuning) and adapts the
//! function count/memory online with cheap restarts (training).

use crate::context;
use crate::report::{secs, usd, Table};
use ce_models::{AllocationSpace, Environment, Workload};
use ce_storage::StorageKind;
use ce_workflow::{Constraint, Method, TrainingJob, TuningJob};
use serde_json::{json, Value};

const STORAGES: [StorageKind; 2] = [StorageKind::S3, StorageKind::VmPs];
const METHODS: [Method; 3] = [Method::CeScaling, Method::Siren, Method::Cirrus];

/// Fig. 16: tuning under pinned storage.
pub fn run_fig16(quick: bool) -> Value {
    let env = Environment::aws_default();
    let sha = context::bracket(quick);
    let w = Workload::mobilenet_cifar10();
    let mut cells = Vec::new();

    println!("Fig. 16 — tuning under the same storage, MobileNet-Cifar10\n");
    for storage in STORAGES {
        let space = AllocationSpace::aws_default().with_only_storage(storage);
        // Budget from the pinned space so every method is feasible.
        let profile = ce_pareto::ParetoProfiler::new(&env)
            .with_space(space.clone())
            .profile_workload(&w);
        let budget = ce_tuning::PartitionPlan::uniform(*profile.cheapest().unwrap(), sha).cost()
            * context::BUDGET_SCALE;
        let mut table = Table::new(["Method", "JCT", "Cost"]);
        for method in METHODS {
            let job = TuningJob::new(w.clone(), sha, Constraint::Budget(budget))
                .with_seed(23)
                .with_space(space.clone());
            match job.run(method) {
                Ok(r) => {
                    table.row([method.label().to_string(), secs(r.jct_s), usd(r.cost_usd)]);
                    cells.push(json!({
                        "storage": storage.to_string(),
                        "method": method.label(),
                        "jct_s": r.jct_s,
                        "cost_usd": r.cost_usd,
                    }));
                }
                Err(e) => {
                    table.row([method.label().to_string(), "err".into(), e.to_string()]);
                    cells.push(json!({
                        "storage": storage.to_string(),
                        "method": method.label(),
                        "error": e.to_string(),
                    }));
                }
            }
        }
        println!("storage = {storage}:");
        table.print();
        println!();
    }
    json!({ "fig16": cells })
}

/// Fig. 17: training under pinned storage.
pub fn run_fig17(quick: bool) -> Value {
    let env = Environment::aws_default();
    let w = Workload::mobilenet_cifar10();
    let seeds = context::seeds(quick);
    let mut cells = Vec::new();

    println!("Fig. 17 — training under the same storage, MobileNet-Cifar10\n");
    for storage in STORAGES {
        let space = AllocationSpace::aws_default().with_only_storage(storage);
        let budget = context::training_budget(&env, &w);
        let mut table = Table::new(["Method", "JCT", "Cost", "Restarts"]);
        for method in METHODS {
            let mut jct = 0.0;
            let mut cost = 0.0;
            let mut restarts = 0.0;
            let mut runs = 0u32;
            for &seed in &seeds {
                let job = TrainingJob::new(w.clone(), Constraint::Budget(budget))
                    .with_seed(seed)
                    .with_space(space.clone());
                if let Ok(r) = job.run(method) {
                    jct += r.jct_s;
                    cost += r.cost_usd;
                    restarts += f64::from(r.restarts);
                    runs += 1;
                }
            }
            let n = f64::from(runs.max(1));
            table.row([
                method.label().to_string(),
                secs(jct / n),
                usd(cost / n),
                format!("{:.1}", restarts / n),
            ]);
            cells.push(json!({
                "storage": storage.to_string(),
                "method": method.label(),
                "jct_s": jct / n,
                "cost_usd": cost / n,
                "restarts": restarts / n,
                "runs": runs,
            }));
        }
        println!("storage = {storage}:");
        table.print();
        println!();
    }
    json!({ "fig17": cells })
}

#[cfg(test)]
mod tests {
    #[test]
    fn ce_wins_tuning_even_with_pinned_storage() {
        let v = super::run_fig16(true);
        let cells = v["fig16"].as_array().unwrap();
        for storage in ["S3", "VM-PS"] {
            let get = |m: &str| {
                cells
                    .iter()
                    .find(|c| c["storage"] == storage && c["method"] == m)
                    .and_then(|c| c["jct_s"].as_f64())
            };
            let ce = get("CE-scaling").expect("CE ran");
            for m in ["Siren", "Cirrus"] {
                if let Some(b) = get(m) {
                    assert!(ce <= b * 1.05, "{storage}: CE {ce} vs {m} {b}");
                }
            }
        }
    }
}
