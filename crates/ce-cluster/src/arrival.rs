//! Tenant/job arrival processes and fleet workload generation.
//!
//! A fleet is a stream of training jobs from many tenants, each job a
//! workload from the paper's zoo plus the two things a tenant actually
//! cares about: a QoS deadline on arrival-to-completion time and a
//! dollar budget. Arrivals are either a seeded Poisson process (the
//! usual open-loop model for serverless traffic) or an explicit trace
//! (replayed from a file or a test fixture).

use ce_ml::curve::CurveParams;
use ce_models::{AllocationSpace, Environment, Workload};
use ce_pareto::ParetoProfiler;
use ce_sim_core::rng::SimRng;
use ce_workflow::Method;
use serde::{Deserialize, Serialize};

/// How jobs arrive at the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals at `rate_per_min` jobs per minute.
    Poisson {
        /// Mean arrival rate, jobs per minute.
        rate_per_min: f64,
    },
    /// Trace-driven: jobs arrive exactly at these offsets (seconds from
    /// simulation start). Extra jobs beyond the trace reuse the last
    /// inter-arrival gap.
    Trace {
        /// Arrival offsets in seconds, ascending.
        arrival_s: Vec<f64>,
    },
}

impl ArrivalProcess {
    /// Draws `jobs` arrival times (seconds, ascending) from the process.
    pub fn arrivals(&self, jobs: usize, rng: &mut SimRng) -> Vec<f64> {
        match self {
            ArrivalProcess::Poisson { rate_per_min } => {
                let rate_per_s = (rate_per_min / 60.0).max(1e-9);
                let mut t = 0.0;
                (0..jobs)
                    .map(|_| {
                        // Inverse-CDF exponential inter-arrival.
                        let u = rng.uniform();
                        t += -(1.0 - u).ln() / rate_per_s;
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Trace { arrival_s } => {
                let mut out: Vec<f64> = arrival_s.iter().copied().take(jobs).collect();
                // Extend past the trace with the trailing gap.
                let gap = match arrival_s.len() {
                    0 => 1.0,
                    1 => arrival_s[0].max(1.0),
                    n => (arrival_s[n - 1] - arrival_s[n - 2]).max(1e-3),
                };
                while out.len() < jobs {
                    let last = out.last().copied().unwrap_or(0.0);
                    out.push(last + gap);
                }
                out
            }
        }
    }
}

/// One tenant job: a workload plus its QoS contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Fleet-unique job id (also the arrival order).
    pub id: u64,
    /// Owning tenant.
    pub tenant: u32,
    /// Arrival offset, seconds from simulation start.
    pub arrival_s: f64,
    /// What the job trains.
    pub workload: Workload,
    /// Dollar budget; the job's scheduler minimizes JCT under it.
    pub budget_usd: f64,
    /// QoS deadline on arrival-to-completion seconds (queueing
    /// included) — checked at the fleet level.
    pub deadline_s: f64,
    /// Per-job RNG seed (drives the job's own platform and loss curve).
    pub seed: u64,
}

/// A generated fleet: who arrives when, wanting what.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Number of distinct tenants the jobs are spread over.
    pub tenants: u32,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Master seed: fleets are byte-identical per seed.
    pub seed: u64,
    /// The environment jobs will run in (used to size budgets and
    /// deadlines from each workload's profile).
    pub env: Environment,
}

impl FleetSpec {
    /// A fleet with Poisson arrivals at `rate_per_min` over the default
    /// environment.
    pub fn poisson(jobs: usize, rate_per_min: f64, seed: u64) -> Self {
        FleetSpec {
            jobs,
            tenants: (jobs as u32 / 4).clamp(1, 32),
            arrivals: ArrivalProcess::Poisson { rate_per_min },
            seed,
            env: Environment::aws_default(),
        }
    }

    /// The workload zoo fleets draw from: the paper's small/medium
    /// models (large ones would dwarf the shared quota on their own).
    pub fn zoo() -> Vec<Workload> {
        vec![
            Workload::lr_higgs(),
            Workload::svm_higgs(),
            Workload::mobilenet_cifar10(),
        ]
    }

    /// Generates the fleet's jobs, deterministically per seed.
    ///
    /// Budgets and deadlines are sized from each workload's profile so
    /// they are *feasible but not lavish*: budget is the mid-boundary
    /// allocation's cost over the mean epoch count times U(1.5, 3);
    /// deadline is the matching runtime times U(2, 4) — headroom that
    /// queueing under an overloaded cluster eats quickly.
    pub fn generate(&self) -> Vec<JobSpec> {
        let rng = SimRng::new(self.seed).derive("fleet");
        let mut arrival_rng = rng.derive("arrivals");
        let arrivals = self.arrivals.arrivals(self.jobs, &mut arrival_rng);

        let zoo = FleetSpec::zoo();
        // Per-workload (mid-boundary cost/epoch, time/epoch, mean epochs):
        // profile once, reuse across jobs.
        let space = AllocationSpace::aws_default();
        let anchors: Vec<(f64, f64, f64)> = zoo
            .iter()
            .map(|w| {
                let profile = ParetoProfiler::new(&self.env)
                    .with_space(space.clone())
                    .profile_workload_cached(w);
                let boundary = profile.boundary();
                let mid = boundary[boundary.len() / 2];
                let curve = CurveParams::for_workload(w.model.family, &w.dataset.name);
                let target = ce_ml::curve::table4_target(w.model.family, &w.dataset.name);
                let epochs = curve.mean_epochs_to(target).unwrap_or(50.0);
                (mid.cost_usd(), mid.time_s(), epochs)
            })
            .collect();

        arrivals
            .into_iter()
            .enumerate()
            .map(|(i, arrival_s)| {
                let mut job_rng = rng.derive_idx("job", i as u64);
                let wi = job_rng.gen_index(zoo.len());
                let (cost_per_epoch, time_per_epoch, epochs) = anchors[wi];
                let budget_usd = cost_per_epoch * epochs * job_rng.uniform_range(1.5, 3.0);
                let deadline_s = time_per_epoch * epochs * job_rng.uniform_range(2.0, 4.0);
                JobSpec {
                    id: i as u64,
                    tenant: job_rng.gen_index(self.tenants.max(1) as usize) as u32,
                    arrival_s,
                    workload: zoo[wi].clone(),
                    budget_usd,
                    deadline_s,
                    seed: job_rng.next_u64(),
                }
            })
            .collect()
    }
}

/// Builds the single-job [`ce_workflow::TrainingJob`] a fleet job runs
/// as: budget-constrained (the deadline is enforced at the fleet level,
/// where queueing delay is visible), with the allocation grid capped at
/// `quota` — a job cannot plan waves the shared account limit could
/// never supply.
pub fn training_job(spec: &JobSpec, env: &Environment, quota: u32) -> ce_workflow::TrainingJob {
    let mut job = ce_workflow::TrainingJob::new(
        spec.workload.clone(),
        ce_workflow::Constraint::Budget(spec.budget_usd),
    )
    .with_seed(spec.seed)
    .with_space(AllocationSpace::aws_default().with_max_concurrency(quota));
    job.env = env.clone();
    job
}

/// The method fleet jobs are scheduled with (per-job allocation control).
pub const FLEET_METHOD: Method = Method::CeScaling;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_arrivals_are_sorted_and_seeded() {
        let p = ArrivalProcess::Poisson { rate_per_min: 12.0 };
        let mut r1 = SimRng::new(9);
        let mut r2 = SimRng::new(9);
        let a = p.arrivals(50, &mut r1);
        let b = p.arrivals(50, &mut r2);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // Mean inter-arrival should be near 5 s at 12/min.
        let mean_gap = a.last().unwrap() / 50.0;
        assert!(mean_gap > 2.0 && mean_gap < 10.0, "mean gap {mean_gap}");
    }

    #[test]
    fn trace_arrivals_extend_with_trailing_gap() {
        let p = ArrivalProcess::Trace {
            arrival_s: vec![0.0, 10.0, 30.0],
        };
        let mut rng = SimRng::new(1);
        let a = p.arrivals(5, &mut rng);
        assert_eq!(a, vec![0.0, 10.0, 30.0, 50.0, 70.0]);
    }

    #[test]
    fn fleets_are_deterministic_per_seed() {
        let spec = FleetSpec::poisson(20, 6.0, 77);
        assert_eq!(spec.generate(), spec.generate());
        let other = FleetSpec::poisson(20, 6.0, 78);
        assert_ne!(spec.generate(), other.generate());
    }

    #[test]
    fn generated_jobs_have_feasible_contracts() {
        let spec = FleetSpec::poisson(30, 6.0, 3);
        let jobs = spec.generate();
        assert_eq!(jobs.len(), 30);
        for job in &jobs {
            assert!(job.budget_usd > 0.0);
            assert!(job.deadline_s > 0.0);
            assert!(job.tenant < spec.tenants);
        }
        // The zoo should actually be mixed.
        let names: std::collections::BTreeSet<String> =
            jobs.iter().map(|j| j.workload.label()).collect();
        assert!(names.len() >= 2, "only {names:?}");
    }
}
