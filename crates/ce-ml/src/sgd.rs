//! A real mini-batch SGD kernel for the linear models.
//!
//! This is the honest end of the substrate: logistic regression and
//! hinge-loss SVM trained with momentum SGD over [`crate::synth`] data.
//! The distributed workflow runner uses it in BSP mode — each worker
//! computes a gradient over its shard, gradients are averaged (optionally
//! through a real [`ce_storage::SimStore`]), and every worker applies the
//! same update — which is exactly the synchronization structure of Fig. 5.
//!
//! Gradient computation parallelizes over the batch with rayon, the
//! canonical data-parallel idiom for this workload.

use crate::synth::SynthDataset;
use ce_sim_core::rng::SimRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Loss function of the linear model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinearLoss {
    /// Log-loss (logistic regression).
    Logistic,
    /// Hinge loss (linear SVM).
    Hinge,
}

/// Mini-batch SGD state for one worker (or the single global trainer).
#[derive(Debug, Clone)]
pub struct SgdTrainer {
    loss: LinearLoss,
    weights: Vec<f32>,
    velocity: Vec<f32>,
    learning_rate: f32,
    momentum: f32,
    l2: f32,
}

impl SgdTrainer {
    /// Creates a trainer with zero-initialized weights.
    pub fn new(loss: LinearLoss, features: usize, learning_rate: f32, momentum: f32) -> Self {
        assert!(features > 0);
        assert!(learning_rate > 0.0);
        assert!((0.0..1.0).contains(&momentum));
        SgdTrainer {
            loss,
            weights: vec![0.0; features],
            velocity: vec![0.0; features],
            learning_rate,
            momentum,
            l2: 1e-4,
        }
    }

    /// Current weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Overwrites the weights (used after BSP synchronization).
    pub fn set_weights(&mut self, w: &[f32]) {
        assert_eq!(w.len(), self.weights.len());
        self.weights.copy_from_slice(w);
    }

    /// Computes the average gradient over `batch` instance indices of
    /// `data`, *without* applying it (BSP workers exchange raw gradients).
    pub fn gradient(&self, data: &SynthDataset, batch: &[usize]) -> Vec<f32> {
        assert!(!batch.is_empty());
        let d = data.features;
        // The expensive per-example work (dot product + loss derivative)
        // lives in the map stage so it parallelizes across batch shards;
        // the elementwise accumulation runs as an ordered reduce on the
        // calling thread. Each per-example vector starts from zeros and
        // contributions are added in batch order, so the sum sees the
        // same f32 operands in the same association order as a single
        // sequential accumulator — bit-identical at any thread count.
        let mut grad = batch
            .par_iter()
            .map(|&i| {
                let xi = data.row(i);
                let yi = data.y[i];
                let margin: f32 = xi.iter().zip(&self.weights).map(|(x, w)| x * w).sum();
                let mut g = vec![0.0f32; d];
                match self.loss {
                    LinearLoss::Logistic => {
                        // d/dw log(1 + exp(-y w·x)) = -y σ(-y w·x) x
                        let z = (-yi * margin).min(30.0);
                        let coeff = -yi * (1.0 / (1.0 + (-z).exp()));
                        for (a, x) in g.iter_mut().zip(xi) {
                            *a += coeff * x;
                        }
                    }
                    LinearLoss::Hinge => {
                        if yi * margin < 1.0 {
                            for (a, x) in g.iter_mut().zip(xi) {
                                *a += -yi * x;
                            }
                        }
                    }
                }
                g
            })
            .reduce(
                || vec![0.0f32; d],
                |mut a, b| {
                    for (ai, bi) in a.iter_mut().zip(&b) {
                        *ai += bi;
                    }
                    a
                },
            );
        let inv = 1.0 / batch.len() as f32;
        for (g, w) in grad.iter_mut().zip(&self.weights) {
            *g = *g * inv + self.l2 * w;
        }
        grad
    }

    /// Applies one momentum-SGD update from an (already averaged) gradient.
    pub fn apply_gradient(&mut self, grad: &[f32]) {
        assert_eq!(grad.len(), self.weights.len());
        for ((v, w), g) in self.velocity.iter_mut().zip(&mut self.weights).zip(grad) {
            *v = self.momentum * *v - self.learning_rate * g;
            *w += *v;
        }
    }

    /// Mean loss of the current weights over the whole of `data`.
    pub fn evaluate(&self, data: &SynthDataset) -> f64 {
        let total: f64 = (0..data.len())
            .into_par_iter()
            .map(|i| {
                let margin: f32 = data
                    .row(i)
                    .iter()
                    .zip(&self.weights)
                    .map(|(x, w)| x * w)
                    .sum();
                let m = f64::from(data.y[i]) * f64::from(margin);
                match self.loss {
                    LinearLoss::Logistic => (1.0 + (-m).exp()).ln(),
                    LinearLoss::Hinge => (1.0 - m).max(0.0),
                }
            })
            .sum();
        total / data.len() as f64
    }

    /// Classification accuracy of the current weights over `data`.
    pub fn accuracy(&self, data: &SynthDataset) -> f64 {
        let correct: usize = (0..data.len())
            .into_par_iter()
            .filter(|&i| {
                let margin: f32 = data
                    .row(i)
                    .iter()
                    .zip(&self.weights)
                    .map(|(x, w)| x * w)
                    .sum();
                margin * data.y[i] > 0.0
            })
            .count();
        correct as f64 / data.len() as f64
    }

    /// Trains one full epoch (all instances once, in shuffled mini-batches
    /// of `batch_size`), returning the end-of-epoch loss over `data`.
    pub fn train_epoch(&mut self, data: &SynthDataset, batch_size: usize, rng: &mut SimRng) -> f64 {
        assert!(batch_size > 0);
        let mut order: Vec<usize> = (0..data.len()).collect();
        rng.shuffle(&mut order);
        for batch in order.chunks(batch_size) {
            let grad = self.gradient(data, batch);
            self.apply_gradient(&grad);
        }
        self.evaluate(data)
    }
}

/// Averages per-worker gradients (the aggregation step of Fig. 5).
///
/// # Panics
/// Panics if `grads` is empty or the gradients disagree in length.
pub fn average_gradients(grads: &[Vec<f32>]) -> Vec<f32> {
    assert!(!grads.is_empty());
    let d = grads[0].len();
    let mut avg = vec![0.0f32; d];
    for g in grads {
        assert_eq!(g.len(), d, "gradient length mismatch");
        for (a, v) in avg.iter_mut().zip(g) {
            *a += v;
        }
    }
    let inv = 1.0 / grads.len() as f32;
    for a in &mut avg {
        *a *= inv;
    }
    avg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::CurveParams;

    fn dataset(seed: u64) -> SynthDataset {
        SynthDataset::generate(2000, 16, 0.05, &mut SimRng::new(seed))
    }

    #[test]
    fn logistic_loss_decreases_over_epochs() {
        let data = dataset(1);
        let mut t = SgdTrainer::new(LinearLoss::Logistic, 16, 0.1, 0.9);
        let mut rng = SimRng::new(2);
        let untrained = t.evaluate(&data); // ln 2 for zero weights
        assert!((untrained - std::f64::consts::LN_2).abs() < 1e-6);
        let mut last = untrained;
        for _ in 0..10 {
            last = t.train_epoch(&data, 64, &mut rng);
        }
        assert!(last < untrained * 0.6, "untrained {untrained} last {last}");
    }

    #[test]
    fn hinge_loss_decreases_over_epochs() {
        let data = dataset(3);
        let mut t = SgdTrainer::new(LinearLoss::Hinge, 16, 0.05, 0.9);
        let mut rng = SimRng::new(4);
        let first = t.train_epoch(&data, 64, &mut rng);
        let mut last = first;
        for _ in 0..9 {
            last = t.train_epoch(&data, 64, &mut rng);
        }
        assert!(last < first, "first {first} last {last}");
    }

    #[test]
    fn trained_model_beats_chance() {
        let data = dataset(5);
        let mut t = SgdTrainer::new(LinearLoss::Logistic, 16, 0.1, 0.9);
        let mut rng = SimRng::new(6);
        for _ in 0..15 {
            t.train_epoch(&data, 64, &mut rng);
        }
        let acc = t.accuracy(&data);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn bsp_aggregation_matches_single_worker_batch() {
        // Averaging shard gradients over the same global batch must equal
        // the single-worker gradient over that batch (up to shard-size
        // weighting, which is equal here).
        let data = dataset(7);
        let t = SgdTrainer::new(LinearLoss::Logistic, 16, 0.1, 0.0);
        let batch_a: Vec<usize> = (0..100).collect();
        let batch_b: Vec<usize> = (100..200).collect();
        let combined: Vec<usize> = (0..200).collect();
        let g_combined = t.gradient(&data, &combined);
        let g_avg = average_gradients(&[t.gradient(&data, &batch_a), t.gradient(&data, &batch_b)]);
        for (c, a) in g_combined.iter().zip(&g_avg) {
            assert!((c - a).abs() < 1e-5, "{c} vs {a}");
        }
    }

    #[test]
    fn average_gradients_of_identical_inputs_is_identity() {
        let g = vec![1.0f32, -2.0, 3.0];
        let avg = average_gradients(&[g.clone(), g.clone(), g.clone()]);
        assert_eq!(avg, g);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_gradient_lengths_panic() {
        average_gradients(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn set_weights_roundtrips() {
        let mut t = SgdTrainer::new(LinearLoss::Hinge, 4, 0.1, 0.0);
        t.set_weights(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.weights(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn training_is_deterministic() {
        let data = dataset(8);
        let run = |seed| {
            let mut t = SgdTrainer::new(LinearLoss::Logistic, 16, 0.1, 0.9);
            let mut rng = SimRng::new(seed);
            (0..5)
                .map(|_| t.train_epoch(&data, 64, &mut rng))
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn gradient_bit_identical_across_thread_counts() {
        // f32 accumulation is non-associative, so this only holds if the
        // parallel engine reduces in the sequential association order.
        let data = dataset(11);
        let mut t = SgdTrainer::new(LinearLoss::Logistic, 16, 0.1, 0.9);
        t.set_weights(&[0.03f32; 16]);
        let batch: Vec<usize> = (0..512).collect();
        let seq = rayon::with_threads(1, || t.gradient(&data, &batch));
        for threads in [2, 8] {
            let par = rayon::with_threads(threads, || t.gradient(&data, &batch));
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(
                    s.to_bits(),
                    p.to_bits(),
                    "gradient bits at {threads} threads"
                );
            }
        }
        let eval_seq = rayon::with_threads(1, || t.evaluate(&data));
        let eval_par = rayon::with_threads(8, || t.evaluate(&data));
        assert_eq!(eval_seq.to_bits(), eval_par.to_bits());
    }

    #[test]
    fn real_sgd_losses_fit_inverse_power_family() {
        // The substrate's core honesty check: the loss trajectory of real
        // SGD is well approximated by the curve family the schedulers
        // assume. Fit by grid search over (floor, rate) with power = 1 and
        // check the relative residual is small.
        let data = dataset(9);
        let mut t = SgdTrainer::new(LinearLoss::Logistic, 16, 0.05, 0.9);
        let mut rng = SimRng::new(10);
        let losses: Vec<f64> = (0..30)
            .map(|_| t.train_epoch(&data, 128, &mut rng))
            .collect();
        let initial = (1.0f64 + 1.0f64.exp()).ln_1p().max(losses[0] * 1.5);

        let mut best = (f64::INFINITY, 0.0, 0.0);
        let min_loss = losses.iter().cloned().fold(f64::INFINITY, f64::min);
        for fi in 0..40 {
            let floor = min_loss * f64::from(fi) / 40.0;
            for ri in 1..200 {
                let rate = f64::from(ri) * 0.05;
                let sse: f64 = losses
                    .iter()
                    .enumerate()
                    .map(|(e, &l)| {
                        let fit = floor + (initial - floor) / (1.0 + rate * (e + 1) as f64);
                        (fit - l).powi(2)
                    })
                    .sum();
                if sse < best.0 {
                    best = (sse, floor, rate);
                }
            }
        }
        let params = CurveParams {
            initial,
            floor: best.1,
            rate: best.2,
            power: 1.0,
            obs_noise: 0.0,
            rate_var: 0.0,
        };
        let mean_rel_err: f64 = losses
            .iter()
            .enumerate()
            .map(|(e, &l)| ((params.mean_loss_at((e + 1) as f64) - l) / l).abs())
            .sum::<f64>()
            / losses.len() as f64;
        assert!(
            mean_rel_err < 0.10,
            "inverse-power fit off by {mean_rel_err:.3} on real SGD"
        );
    }
}
