//! The Siren baseline \[9\].
//!
//! Siren drives allocation with reinforcement learning over S3-backed
//! training. We implement its two behavioural signatures the evaluation
//! depends on:
//!
//! * **Training** — a real tabular Q-learning policy: states are training
//!   progress buckets, actions are allocations, the reward trades epoch
//!   time against epoch cost with a terminal penalty for violating the
//!   constraint. The policy is (re)trained in-simulator — the costly
//!   "black-box model training" step §II-C2 criticizes — and the agent
//!   re-decides **every epoch**, paying eager restart overhead whenever
//!   the action changes (§IV-C: "Siren adjusts resources every epoch,
//!   which causes considerable overhead").
//! * **Tuning** — front-loading: §IV-B observes that "Siren's
//!   reinforcement learning model tends to allocate more resources in
//!   the early stages, which leads to more resources wasted on trials
//!   that will be terminated early". We reproduce that signature
//!   deterministically: stages are funded in order, each taking the
//!   fastest allocation affordable after reserving only the bare minimum
//!   for the stages after it.

use ce_models::Allocation;
use ce_pareto::{AllocPoint, Profile};
use ce_sim_core::qlearn::{EpsilonSchedule, QEnv, QLearner, QStep};
use ce_sim_core::rng::SimRng;
use ce_training::TrainingObjective;
use ce_tuning::{Objective, PartitionPlan, ShaSpec};
use serde::{Deserialize, Serialize};

/// The Siren scheduler.
#[derive(Debug, Clone)]
pub struct SirenScheduler {
    /// Q-learning episodes for policy training.
    pub episodes: u32,
    /// Progress buckets (states).
    pub buckets: usize,
}

impl Default for SirenScheduler {
    fn default() -> Self {
        SirenScheduler {
            episodes: 400,
            buckets: 10,
        }
    }
}

/// A trained per-progress-bucket allocation policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SirenPolicy {
    candidates: Vec<AllocPoint>,
    /// Greedy action per progress bucket.
    greedy: Vec<usize>,
}

impl SirenPolicy {
    /// The allocation for a training progress fraction in `[0, 1]`.
    pub fn decide(&self, progress: f64) -> Allocation {
        let bucket =
            ((progress.clamp(0.0, 1.0)) * (self.greedy.len() as f64 - 1.0)).round() as usize;
        self.candidates[self.greedy[bucket]].alloc
    }

    /// The profiled point behind a decision.
    pub fn point_for(&self, progress: f64) -> &AllocPoint {
        let bucket =
            ((progress.clamp(0.0, 1.0)) * (self.greedy.len() as f64 - 1.0)).round() as usize;
        &self.candidates[self.greedy[bucket]]
    }
}

impl SirenScheduler {
    /// Creates a scheduler with the default RL hyperparameters.
    pub fn new() -> Self {
        SirenScheduler::default()
    }

    /// Trains the Q-learning policy for a training job over an
    /// S3-pinned profile.
    ///
    /// `expected_epochs` seeds the episode length distribution (Siren
    /// must still guess job length; its RL does not remove that need).
    pub fn train_policy(
        &self,
        profile: &Profile,
        objective: TrainingObjective,
        expected_epochs: f64,
        seed: u64,
    ) -> SirenPolicy {
        let candidates: Vec<AllocPoint> = profile.boundary().into_iter().copied().collect();
        assert!(!candidates.is_empty(), "profile must not be empty");
        let n_actions = candidates.len();
        let mean_t = candidates.iter().map(|p| p.time_s()).sum::<f64>() / n_actions as f64;
        let mean_c = candidates.iter().map(|p| p.cost_usd()).sum::<f64>() / n_actions as f64;

        let mut env = SirenEnv {
            candidates: &candidates,
            mean_t,
            mean_c,
            objective,
            expected_epochs,
            n_states: self.buckets,
            epochs: 0,
            epoch: 0,
            spent: 0.0,
            elapsed: 0.0,
        };
        let mut rng = SimRng::new(seed).derive("siren-qlearn");
        let learner = QLearner {
            alpha: 0.1,
            gamma: 0.95,
            episodes: self.episodes,
            epsilon: EpsilonSchedule::Harmonic { decay: 40.0 },
        };
        let table = learner.train(&mut env, &mut rng);
        SirenPolicy {
            greedy: table.greedy(),
            candidates,
        }
    }

    /// The front-loading tuning plan: fund stages first-come-first-served
    /// in stage order, each taking the fastest allocation affordable
    /// after reserving only the cheapest possible configuration for all
    /// later stages.
    pub fn tuning_plan(
        &self,
        profile: &Profile,
        sha: ShaSpec,
        objective: Objective,
        max_concurrency: u32,
    ) -> Option<PartitionPlan> {
        let points: Vec<AllocPoint> = profile.boundary().into_iter().copied().collect();
        if points.is_empty() {
            return None;
        }
        let cheapest = *points
            .iter()
            .min_by(|a, b| a.cost_usd().total_cmp(&b.cost_usd()))?;
        let d = sha.num_stages();
        let r = f64::from(sha.epochs_per_stage);
        let budget = match objective {
            Objective::MinJctGivenBudget { budget, .. } => budget,
            // Under a QoS constraint Siren front-loads time: give early
            // stages the fast allocations and let late stages absorb the
            // slack. Emulate by converting the deadline into the budget
            // of the fastest plan that meets it.
            Objective::MinCostGivenQos { qos_s, .. } => {
                let fastest = PartitionPlan::uniform(
                    *points
                        .iter()
                        .min_by(|a, b| a.time_s().total_cmp(&b.time_s()))?,
                    sha,
                );
                if fastest.jct(max_concurrency) > qos_s {
                    fastest.cost()
                } else {
                    // Enough slack: still front-load, but from the
                    // cheapest plan meeting the deadline.
                    crate::statics::optimal_static_plan(profile, sha, objective, max_concurrency)
                        .map(|p| p.cost())
                        .unwrap_or_else(|_| fastest.cost())
                }
            }
        };
        let mut remaining = budget;
        let mut stages = Vec::with_capacity(d);
        for stage in 0..d {
            let q = f64::from(sha.trials_in_stage(stage));
            // Reserve the minimum for the stages after this one.
            let reserve: f64 = (stage + 1..d)
                .map(|s| f64::from(sha.trials_in_stage(s)) * r * cheapest.cost_usd())
                .sum();
            let affordable = (remaining - reserve).max(0.0);
            let point = points
                .iter()
                .filter(|p| q * r * p.cost_usd() <= affordable)
                .min_by(|a, b| a.time_s().total_cmp(&b.time_s()))
                .copied()
                .unwrap_or(cheapest);
            remaining -= q * r * point.cost_usd();
            stages.push(point);
        }
        Some(PartitionPlan::new(stages, sha))
    }
}

/// Siren's training MDP: states are progress buckets, actions index the
/// Pareto-boundary allocations, rewards blend normalized epoch time and
/// cost with a terminal constraint penalty. The draw order (episode
/// length at reset; time jitter then cost jitter per step) reproduces
/// the pre-refactor inline loop bit-for-bit through [`QLearner::train`].
struct SirenEnv<'a> {
    candidates: &'a [AllocPoint],
    mean_t: f64,
    mean_c: f64,
    objective: TrainingObjective,
    expected_epochs: f64,
    n_states: usize,
    // Per-episode state.
    epochs: usize,
    epoch: usize,
    spent: f64,
    elapsed: f64,
}

impl QEnv for SirenEnv<'_> {
    fn n_states(&self) -> usize {
        self.n_states
    }

    fn n_actions(&self) -> usize {
        self.candidates.len()
    }

    fn reset(&mut self, rng: &mut SimRng) -> usize {
        // Episode length: the true job length is stochastic.
        self.epochs = (self.expected_epochs * rng.lognormal_jitter(0.25)).max(2.0) as usize;
        self.epoch = 0;
        self.spent = 0.0;
        self.elapsed = 0.0;
        0
    }

    fn step(&mut self, _state: usize, action: usize, rng: &mut SimRng) -> QStep {
        let point = &self.candidates[action];
        let t = point.time_s() * rng.lognormal_jitter(0.05);
        let c = point.cost_usd() * rng.lognormal_jitter(0.02);
        self.spent += c;
        self.elapsed += t;
        // Per-step reward: normalized time+cost blend.
        let mut reward = -(t / self.mean_t) - (c / self.mean_c);
        let done = self.epoch == self.epochs - 1;
        // Terminal constraint penalty.
        if done {
            reward -= match self.objective {
                TrainingObjective::MinJctGivenBudget { budget } => {
                    10.0 * (self.spent - budget).max(0.0) / budget.max(1e-9)
                }
                TrainingObjective::MinCostGivenQos { qos_s } => {
                    10.0 * (self.elapsed - qos_s).max(0.0) / qos_s.max(1e-9)
                }
            };
        }
        let next_state = ((self.epoch + 1) * self.n_states / self.epochs).min(self.n_states - 1);
        self.epoch += 1;
        QStep {
            reward,
            next_state,
            done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_models::{AllocationSpace, Environment, Workload};
    use ce_pareto::ParetoProfiler;
    use ce_storage::StorageKind;

    fn s3_profile(w: &Workload) -> Profile {
        let env = Environment::aws_default();
        ParetoProfiler::new(&env)
            .with_space(AllocationSpace::aws_default().with_only_storage(StorageKind::S3))
            .profile_workload(w)
    }

    #[test]
    fn tuning_plan_front_loads_early_stages() {
        let w = Workload::lr_higgs();
        let p = s3_profile(&w);
        let sha = ShaSpec::motivation_example();
        let budget = PartitionPlan::uniform(*p.cheapest().unwrap(), sha).cost() * 3.0;
        let plan = SirenScheduler::new()
            .tuning_plan(
                &p,
                sha,
                Objective::MinJctGivenBudget {
                    budget,
                    qos_s: None,
                },
                3000,
            )
            .unwrap();
        // Early stages' per-trial epoch cost is at least the late stages'.
        assert!(
            plan.stages[0].cost_usd() >= plan.stages[4].cost_usd(),
            "stage 1 {} < stage 5 {}",
            plan.stages[0].cost_usd(),
            plan.stages[4].cost_usd()
        );
        // And the budget is respected.
        assert!(plan.cost() <= budget * 1.0001);
    }

    #[test]
    fn siren_wastes_more_than_optimal_static_on_early_stages() {
        // The §IV-B claim: LambdaML (optimal static) beats Siren because
        // Siren front-loads terminated trials.
        let w = Workload::lr_higgs();
        let p = s3_profile(&w);
        let sha = ShaSpec::paper_default();
        let objective = Objective::MinJctGivenBudget {
            budget: PartitionPlan::uniform(*p.cheapest().unwrap(), sha).cost() * 2.0,
            qos_s: None,
        };
        let siren = SirenScheduler::new()
            .tuning_plan(&p, sha, objective, 3000)
            .unwrap();
        let static_opt = crate::statics::optimal_static_plan(&p, sha, objective, 3000).unwrap();
        assert!(
            siren.jct(3000) >= static_opt.jct(3000),
            "siren {} < static {}",
            siren.jct(3000),
            static_opt.jct(3000)
        );
    }

    #[test]
    fn policy_is_deterministic_per_seed() {
        let w = Workload::lr_higgs();
        let p = s3_profile(&w);
        let s = SirenScheduler::new();
        let obj = TrainingObjective::MinJctGivenBudget { budget: 20.0 };
        let a = s.train_policy(&p, obj, 40.0, 7);
        let b = s.train_policy(&p, obj, 40.0, 7);
        assert_eq!(a.greedy, b.greedy);
    }

    #[test]
    fn policy_decides_for_all_progress_values() {
        let w = Workload::lr_higgs();
        let p = s3_profile(&w);
        let s = SirenScheduler::new();
        let policy = s.train_policy(
            &p,
            TrainingObjective::MinJctGivenBudget { budget: 20.0 },
            40.0,
            3,
        );
        for progress in [0.0, 0.3, 0.5, 0.99, 1.0, 1.5, -0.1] {
            let alloc = policy.decide(progress);
            assert_eq!(alloc.storage, StorageKind::S3);
        }
    }

    /// A verbatim copy of the pre-refactor inline Q-learning loop, kept
    /// as a differential oracle: the [`QLearner`]-based `train_policy`
    /// must reproduce its greedy policies bit-for-bit.
    fn train_policy_old_loop(
        scheduler: &SirenScheduler,
        profile: &Profile,
        objective: TrainingObjective,
        expected_epochs: f64,
        seed: u64,
    ) -> Vec<usize> {
        use ce_sim_core::qlearn::argmax;
        let candidates: Vec<AllocPoint> = profile.boundary().into_iter().copied().collect();
        assert!(!candidates.is_empty(), "profile must not be empty");
        let n_actions = candidates.len();
        let n_states = scheduler.buckets;
        let mean_t = candidates.iter().map(|p| p.time_s()).sum::<f64>() / n_actions as f64;
        let mean_c = candidates.iter().map(|p| p.cost_usd()).sum::<f64>() / n_actions as f64;

        let mut q = vec![vec![0.0f64; n_actions]; n_states];
        let mut rng = SimRng::new(seed).derive("siren-qlearn");
        let alpha = 0.1;
        let gamma = 0.95;
        for episode in 0..scheduler.episodes {
            let eps = 1.0 / (1.0 + f64::from(episode) / 40.0);
            let epochs = (expected_epochs * rng.lognormal_jitter(0.25)).max(2.0) as usize;
            let mut spent = 0.0;
            let mut elapsed = 0.0;
            for e in 0..epochs {
                let state = e * n_states / epochs;
                let action = if rng.uniform() < eps {
                    rng.gen_index(n_actions)
                } else {
                    argmax(&q[state])
                };
                let point = &candidates[action];
                let t = point.time_s() * rng.lognormal_jitter(0.05);
                let c = point.cost_usd() * rng.lognormal_jitter(0.02);
                spent += c;
                elapsed += t;
                let mut reward = -(t / mean_t) - (c / mean_c);
                if e == epochs - 1 {
                    reward -= match objective {
                        TrainingObjective::MinJctGivenBudget { budget } => {
                            10.0 * (spent - budget).max(0.0) / budget.max(1e-9)
                        }
                        TrainingObjective::MinCostGivenQos { qos_s } => {
                            10.0 * (elapsed - qos_s).max(0.0) / qos_s.max(1e-9)
                        }
                    };
                }
                let next_state = ((e + 1) * n_states / epochs).min(n_states - 1);
                let future = if e == epochs - 1 {
                    0.0
                } else {
                    q[next_state][argmax(&q[next_state])]
                };
                q[state][action] += alpha * (reward + gamma * future - q[state][action]);
            }
        }
        q.iter().map(|row| argmax(row)).collect()
    }

    #[test]
    fn refactored_learner_matches_the_old_inline_loop_bit_for_bit() {
        let w = Workload::lr_higgs();
        let p = s3_profile(&w);
        let s = SirenScheduler::new();
        for seed in [3_u64, 7, 11, 42] {
            for objective in [
                TrainingObjective::MinJctGivenBudget { budget: 20.0 },
                TrainingObjective::MinCostGivenQos { qos_s: 900.0 },
            ] {
                let new = s.train_policy(&p, objective, 40.0, seed);
                let old = train_policy_old_loop(&s, &p, objective, 40.0, seed);
                assert_eq!(
                    new.greedy, old,
                    "QLearner refactor drifted from the old loop (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn budget_pressure_produces_cheaper_policy() {
        // With a starvation budget the learned policy should spend less
        // per epoch than with an unlimited one.
        let w = Workload::lr_higgs();
        let p = s3_profile(&w);
        let s = SirenScheduler::new();
        let avg_cost = |budget: f64| {
            let policy = s.train_policy(
                &p,
                TrainingObjective::MinJctGivenBudget { budget },
                40.0,
                11,
            );
            (0..10)
                .map(|i| policy.point_for(f64::from(i) / 9.0).cost_usd())
                .sum::<f64>()
                / 10.0
        };
        let tight = avg_cost(1.0);
        let loose = avg_cost(1e6);
        assert!(
            tight <= loose,
            "tight-budget policy dearer than loose: {tight} vs {loose}"
        );
    }
}
