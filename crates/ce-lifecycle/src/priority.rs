//! Priority/preemption policies arbitrating the shared quota.
//!
//! Two decisions, both pluggable. *Preemption*: when a request cannot
//! lease a worker, may a running epoch be killed for it (and which)?
//! The preempted epoch rolls back to its latest checkpoint through the
//! ce-workflow recovery machinery — the partial epoch, the restore
//! transfer, and the backoff stall are all billed to the training job.
//! *Drain order*: when capacity frees up, do parked requests or queued
//! epochs dispatch first? Policies differentiate along the classic
//! latency-vs-throughput axis; `deadline` additionally reads each
//! training run's remaining slack.

/// What a policy sees when arbitrating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaView {
    /// Current simulation time (seconds).
    pub now_s: f64,
    /// Workers currently leased from the shared quota.
    pub in_use: u32,
    /// The account-level concurrency limit.
    pub limit: u32,
    /// Workers held by in-flight requests.
    pub serve_held: u32,
    /// Workers held by in-flight epochs.
    pub train_held: u32,
    /// Smallest deadline slack (seconds) among *queued* training runs,
    /// if any is queued. Negative slack means the deadline has passed.
    pub ready_train_slack_s: Option<f64>,
}

/// One preemptible epoch (in flight, not yet converged).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VictimView {
    /// The tenant whose epoch is running.
    pub tenant: u32,
    /// Workers the epoch holds.
    pub workers: u32,
    /// The run's deadline slack at `now` (seconds; negative = late).
    pub slack_s: f64,
}

/// A pluggable priority/preemption policy.
pub trait PriorityPolicy: Send + Sync {
    /// Short name used in reports and metric labels.
    fn name(&self) -> &'static str;

    /// Picks which in-flight epoch dies so a request can dispatch, or
    /// `None` to make the request wait. `victims` is ordered by tenant
    /// id; implementations must pick deterministically.
    fn preempt_victim(&self, victims: &[VictimView], view: &QuotaView) -> Option<usize>;

    /// Whether freed capacity goes to parked requests before queued
    /// epochs. The default favors requests (they are latency-bound).
    fn serve_drains_first(&self, view: &QuotaView) -> bool {
        let _ = view;
        true
    }
}

/// Index of the widest victim; ties break on the earlier index (lower
/// tenant id), so preemption is deterministic.
fn widest(victims: &[VictimView]) -> Option<usize> {
    let mut best: Option<(usize, u32)> = None;
    for (i, v) in victims.iter().enumerate() {
        if best.is_none_or(|(_, w)| v.workers > w) {
            best = Some((i, v.workers));
        }
    }
    best.map(|(i, _)| i)
}

/// Requests always win: any running epoch is fair game, widest first
/// (one kill frees the most workers), and freed capacity serves parked
/// requests before queued epochs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeFirst;

impl PriorityPolicy for ServeFirst {
    fn name(&self) -> &'static str {
        "serve-first"
    }

    fn preempt_victim(&self, victims: &[VictimView], _view: &QuotaView) -> Option<usize> {
        widest(victims)
    }
}

/// Training always wins: epochs are never preempted, and queued epochs
/// dispatch before parked requests (arrivals queue behind them too).
#[derive(Debug, Clone, Copy, Default)]
pub struct TrainFirst;

impl PriorityPolicy for TrainFirst {
    fn name(&self) -> &'static str {
        "train-first"
    }

    fn preempt_victim(&self, _victims: &[VictimView], _view: &QuotaView) -> Option<usize> {
        None
    }

    fn serve_drains_first(&self, _view: &QuotaView) -> bool {
        false
    }
}

/// Splits the quota: serving may preempt only while training holds more
/// than its share, and drains first only while serving holds less than
/// its own.
#[derive(Debug, Clone, Copy)]
pub struct FairShare {
    /// Fraction of the quota reserved for serving (the rest is
    /// training's protected share).
    pub serve_share: f64,
}

impl Default for FairShare {
    fn default() -> Self {
        FairShare { serve_share: 0.5 }
    }
}

impl PriorityPolicy for FairShare {
    fn name(&self) -> &'static str {
        "fair-share"
    }

    fn preempt_victim(&self, victims: &[VictimView], view: &QuotaView) -> Option<usize> {
        let train_share = (f64::from(view.limit) * (1.0 - self.serve_share)).floor();
        if f64::from(view.train_held) > train_share {
            widest(victims)
        } else {
            None
        }
    }

    fn serve_drains_first(&self, view: &QuotaView) -> bool {
        f64::from(view.serve_held) < f64::from(view.limit) * self.serve_share
    }
}

/// Deadline-aware: preempts only epochs whose run still has comfortable
/// slack (killing the *most* relaxed victim), and lets queued training
/// drain first once some run's slack falls below the threshold.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineAware {
    /// Minimum deadline slack (seconds) a run must retain to be
    /// preemptible — and below which queued training turns urgent.
    pub min_slack_s: f64,
}

impl Default for DeadlineAware {
    fn default() -> Self {
        DeadlineAware { min_slack_s: 240.0 }
    }
}

impl PriorityPolicy for DeadlineAware {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn preempt_victim(&self, victims: &[VictimView], _view: &QuotaView) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, v) in victims.iter().enumerate() {
            if v.slack_s < self.min_slack_s {
                continue;
            }
            if best.is_none_or(|(_, s)| v.slack_s > s) {
                best = Some((i, v.slack_s));
            }
        }
        best.map(|(i, _)| i)
    }

    fn serve_drains_first(&self, view: &QuotaView) -> bool {
        view.ready_train_slack_s
            .is_none_or(|slack| slack >= self.min_slack_s)
    }
}

/// Every policy, for frontier sweeps.
pub fn all_priorities() -> Vec<Box<dyn PriorityPolicy>> {
    vec![
        Box::new(ServeFirst),
        Box::new(TrainFirst),
        Box::new(FairShare::default()),
        Box::new(DeadlineAware::default()),
    ]
}

/// The registry names `priority_by_name` accepts, in presentation
/// order. CLI error messages list these so a typo'd `--policy` shows
/// the user what would have worked.
pub fn priority_names() -> &'static [&'static str] {
    &["serve-first", "train-first", "fair-share", "deadline"]
}

/// Builds a policy by name (CLI surface).
pub fn priority_by_name(name: &str) -> Option<Box<dyn PriorityPolicy>> {
    match name {
        "serve-first" => Some(Box::new(ServeFirst)),
        "train-first" => Some(Box::new(TrainFirst)),
        "fair-share" => Some(Box::new(FairShare::default())),
        "deadline" => Some(Box::new(DeadlineAware::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(serve_held: u32, train_held: u32) -> QuotaView {
        QuotaView {
            now_s: 100.0,
            in_use: serve_held + train_held,
            limit: 32,
            serve_held,
            train_held,
            ready_train_slack_s: None,
        }
    }

    fn victims() -> Vec<VictimView> {
        vec![
            VictimView {
                tenant: 0,
                workers: 4,
                slack_s: 100.0,
            },
            VictimView {
                tenant: 1,
                workers: 8,
                slack_s: 900.0,
            },
            VictimView {
                tenant: 2,
                workers: 8,
                slack_s: 500.0,
            },
        ]
    }

    #[test]
    fn registry_round_trips_every_name() {
        for name in priority_names() {
            let p = priority_by_name(name).expect("registered policy");
            assert_eq!(&p.name(), name);
        }
        assert!(priority_by_name("magic").is_none());
        assert_eq!(all_priorities().len(), priority_names().len());
    }

    #[test]
    fn serve_first_kills_the_widest_earliest_victim() {
        let v = victims();
        assert_eq!(ServeFirst.preempt_victim(&v, &view(2, 20)), Some(1));
        assert!(ServeFirst.serve_drains_first(&view(2, 20)));
    }

    #[test]
    fn train_first_never_preempts_and_drains_trains_first() {
        let v = victims();
        assert_eq!(TrainFirst.preempt_victim(&v, &view(2, 20)), None);
        assert!(!TrainFirst.serve_drains_first(&view(2, 20)));
    }

    #[test]
    fn fair_share_protects_trainings_share() {
        let p = FairShare::default();
        let v = victims();
        // Training at 20/32 > 16: over its share, preemptible.
        assert_eq!(p.preempt_victim(&v, &view(2, 20)), Some(1));
        // Training at 12/32 <= 16: protected.
        assert_eq!(p.preempt_victim(&v, &view(2, 12)), None);
        assert!(p.serve_drains_first(&view(10, 12)));
        assert!(!p.serve_drains_first(&view(16, 12)));
    }

    #[test]
    fn deadline_spares_urgent_runs() {
        let p = DeadlineAware::default();
        let v = victims();
        // Tenant 0 (slack 100 < 240) is spared; tenant 1 has most slack.
        assert_eq!(p.preempt_victim(&v, &view(2, 20)), Some(1));
        let urgent: Vec<VictimView> = v
            .iter()
            .map(|x| VictimView {
                slack_s: 10.0,
                ..*x
            })
            .collect();
        assert_eq!(p.preempt_victim(&urgent, &view(2, 20)), None);
        let mut w = view(2, 20);
        w.ready_train_slack_s = Some(30.0);
        assert!(!p.serve_drains_first(&w));
        w.ready_train_slack_s = Some(1000.0);
        assert!(p.serve_drains_first(&w));
    }
}
