//! Shared experiment context: workloads, reference constraints, profiles.
//!
//! The paper states budgets and QoS constraints per experiment but not
//! their absolute values; we derive them from the workload itself so
//! every model family gets a comparable degree of constraint tightness:
//!
//! * tuning budget: `BUDGET_SCALE ×` the cheapest static plan's cost;
//! * tuning deadline: `QOS_SCALE ×` the fastest static plan's JCT;
//! * training budget: `BUDGET_SCALE ×` the mean-epoch job cost at the
//!   mid-boundary allocation;
//! * training deadline: `QOS_SCALE ×` the mean-epoch job JCT at the
//!   mid-boundary allocation.

use ce_ml::curve::{table4_target, CurveParams};
use ce_models::{Environment, Workload};
use ce_pareto::{ParetoProfiler, Profile};
use ce_tuning::{PartitionPlan, ShaSpec};

/// Default budget scale (×) over the cheapest feasible plan.
pub const BUDGET_SCALE: f64 = 2.0;
/// Default QoS scale (×) over the fastest feasible plan. Kept tight —
/// a loose deadline lets every method fall back to its cheapest plan
/// and the comparison degenerates (the paper likewise reports the gap
/// grows as constraints tighten, Fig. 14/15).
pub const QOS_SCALE: f64 = 1.25;

/// The five evaluation workloads (Table IV rows used by Figs. 9–13).
pub fn paper_workloads() -> Vec<Workload> {
    Workload::paper_matrix()
}

/// The SHA bracket: the paper's 16 384-trial/14-stage bracket, or a
/// 256-trial one in quick mode.
pub fn bracket(quick: bool) -> ShaSpec {
    if quick {
        ShaSpec::new(256, 2, 2)
    } else {
        ShaSpec::paper_default()
    }
}

/// Profiles a workload over the unrestricted grid.
pub fn full_profile(env: &Environment, w: &Workload) -> Profile {
    ParetoProfiler::new(env).profile_workload(w)
}

/// Profiles over each storage restriction the compared methods use
/// (unrestricted, S3-only for LambdaML/Siren, VM-PS-only for Cirrus), so
/// reference constraints can be made feasible for every method.
fn method_profiles(env: &Environment, w: &Workload) -> Vec<Profile> {
    use ce_models::AllocationSpace;
    use ce_storage::StorageKind;
    let spaces = [
        AllocationSpace::aws_default(),
        AllocationSpace::aws_default().with_only_storage(StorageKind::S3),
        AllocationSpace::aws_default().with_only_storage(StorageKind::VmPs),
    ];
    spaces
        .iter()
        .map(|s| {
            ParetoProfiler::new(env)
                .with_space(s.clone())
                .profile_workload(w)
        })
        .collect()
}

/// Reference tuning budget for a workload and bracket: `BUDGET_SCALE ×`
/// the costliest method's cheapest static plan, so every compared method
/// has a feasible plan.
pub fn tuning_budget(env: &Environment, w: &Workload, sha: ShaSpec) -> f64 {
    method_profiles(env, w)
        .iter()
        .map(|p| PartitionPlan::uniform(*p.cheapest().expect("nonempty"), sha).cost())
        .fold(0.0, f64::max)
        * BUDGET_SCALE
}

/// Reference tuning deadline: `QOS_SCALE ×` the unrestricted fastest
/// static plan. Storage-restricted baselines may be unable to meet it —
/// they then run their fastest (best-effort) plan and are reported as
/// QoS violations, which is what their unreasonable storage choice
/// costs them on this substrate.
pub fn tuning_deadline(env: &Environment, w: &Workload, sha: ShaSpec) -> f64 {
    let profile = full_profile(env, w);
    let best_static = profile
        .points()
        .iter()
        .map(|p| PartitionPlan::uniform(*p, sha).jct(env.max_concurrency))
        .fold(f64::INFINITY, f64::min);
    best_static * QOS_SCALE
}

/// The workload's convergence family and Table IV target loss.
pub fn curve_and_target(w: &Workload) -> (CurveParams, f64) {
    let params = CurveParams::for_workload(w.model.family, &w.dataset.name);
    let target = table4_target(w.model.family, &w.dataset.name);
    (params, target)
}

/// Reference training budget: `BUDGET_SCALE ×` mean-epochs at the
/// costliest method's mid-boundary allocation.
pub fn training_budget(env: &Environment, w: &Workload) -> f64 {
    let (params, target) = curve_and_target(w);
    let epochs = params.mean_epochs_to(target).expect("target reachable");
    method_profiles(env, w)
        .iter()
        .map(|p| {
            let boundary = p.boundary();
            boundary[boundary.len() / 2].cost_usd()
        })
        .fold(0.0, f64::max)
        * epochs
        * BUDGET_SCALE
}

/// Reference training deadline: `QOS_SCALE ×` mean-epochs at the slowest
/// method's mid-boundary allocation.
pub fn training_deadline(env: &Environment, w: &Workload) -> f64 {
    let (params, target) = curve_and_target(w);
    let epochs = params.mean_epochs_to(target).expect("target reachable");
    method_profiles(env, w)
        .iter()
        .map(|p| {
            let boundary = p.boundary();
            boundary[boundary.len() / 2].time_s()
        })
        .fold(0.0, f64::max)
        * epochs
        * QOS_SCALE
}

/// Seeds for repeated-run averaging (`10` in the paper; fewer in quick
/// mode).
pub fn seeds(quick: bool) -> Vec<u64> {
    if quick {
        vec![1, 2]
    } else {
        (1..=10).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_constraints_are_positive_and_ordered() {
        let env = Environment::aws_default();
        for w in paper_workloads() {
            let sha = ShaSpec::new(256, 2, 2);
            assert!(tuning_budget(&env, &w, sha) > 0.0, "{}", w.label());
            assert!(tuning_deadline(&env, &w, sha) > 0.0, "{}", w.label());
            assert!(training_budget(&env, &w) > 0.0, "{}", w.label());
            assert!(training_deadline(&env, &w) > 0.0, "{}", w.label());
        }
    }

    #[test]
    fn bracket_sizes() {
        assert_eq!(bracket(false).initial_trials, 16_384);
        assert_eq!(bracket(true).initial_trials, 256);
        assert_eq!(seeds(false).len(), 10);
        assert_eq!(seeds(true).len(), 2);
    }
}
