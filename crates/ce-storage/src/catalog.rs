//! The default storage catalog: Table I instantiated with public AWS
//! list prices (us-east-1, 2022/2023 era, as used by the paper).
//!
//! | Service | b_s (MB/s) | ℓ_s (s) | Pricing |
//! |---|---|---|---|
//! | S3 | 90 | 0.045 | $5e-6 / PUT, $4e-7 / GET |
//! | DynamoDB | 120 | 0.008 | $1.25e-6 / 1 KB WRU, $2.5e-7 / 4 KB RRU |
//! | ElastiCache | 420 | 0.0009 | cache.r6g.large $0.206 / h |
//! | VM-PS | 1150 | 0.0006 | c5.2xlarge $0.34 / h (10 Gb/s network) |
//!
//! The numbers are engineering estimates of well-documented service
//! behaviour, not private measurements: S3 sustains ~90 MB/s per connection
//! with tens-of-ms first-byte latency; DynamoDB answers single-digit-ms
//! with a hard 400 KB item limit; ElastiCache/VM-PS answer sub-ms inside a
//! VPC. These are exactly the relative positions Table I asserts
//! (high / medium / low latency; `$`/`$$`/`$$$` cost classes).

use crate::service::{PricingModel, ScalingMode, StorageKind, StorageSpec};
use serde::{Deserialize, Serialize};

/// A set of available storage services (the `S` dimension of Eq. 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StorageCatalog {
    services: Vec<StorageSpec>,
}

impl StorageCatalog {
    /// The paper's Table I catalog with AWS list prices.
    pub fn aws_default() -> Self {
        StorageCatalog {
            services: vec![
                StorageSpec {
                    kind: StorageKind::S3,
                    scaling: ScalingMode::Auto,
                    bandwidth_mbps: 90.0,
                    latency_s: 0.045,
                    pricing: PricingModel::PerRequest {
                        per_put: 5.0e-6,
                        per_get: 4.0e-7,
                        // S3 charges per request regardless of size; model
                        // as one unit up to 5 GB (the single-PUT limit).
                        unit_kb: 5.0 * 1024.0 * 1024.0,
                    },
                    max_object_mb: None,
                    aggregates_locally: false,
                    aggregate_capacity_mbps: None,
                },
                StorageSpec {
                    kind: StorageKind::DynamoDb,
                    scaling: ScalingMode::Auto,
                    bandwidth_mbps: 120.0,
                    latency_s: 0.008,
                    pricing: PricingModel::PerRequest {
                        // On-demand: $1.25 per million write units (1 KB),
                        // $0.25 per million read units (4 KB, modelled as
                        // 1 KB granularity at a quarter of the price).
                        per_put: 1.25e-6,
                        per_get: 2.5e-7,
                        unit_kb: 1.0,
                    },
                    max_object_mb: Some(0.4), // 400 KB item limit
                    aggregates_locally: false,
                    aggregate_capacity_mbps: None,
                },
                StorageSpec {
                    kind: StorageKind::ElastiCache,
                    scaling: ScalingMode::Manual,
                    bandwidth_mbps: 420.0,
                    latency_s: 0.0009,
                    pricing: PricingModel::PerRuntime {
                        dollars_per_hour: 0.206, // cache.r6g.large
                    },
                    max_object_mb: Some(512.0), // Redis string limit
                    aggregates_locally: false,
                    aggregate_capacity_mbps: None,
                },
                StorageSpec {
                    kind: StorageKind::VmPs,
                    scaling: ScalingMode::Manual,
                    bandwidth_mbps: 1150.0,
                    latency_s: 0.0006,
                    pricing: PricingModel::PerRuntime {
                        dollars_per_hour: 0.34, // c5.2xlarge, 10 Gb/s
                    },
                    max_object_mb: None,
                    aggregates_locally: true,
                    aggregate_capacity_mbps: None,
                },
            ],
        }
    }

    /// Builds a catalog from explicit specs (for tests and what-if studies).
    pub fn from_specs(services: Vec<StorageSpec>) -> Self {
        StorageCatalog { services }
    }

    /// All services in the catalog.
    pub fn services(&self) -> &[StorageSpec] {
        &self.services
    }

    /// Looks up one service by kind.
    pub fn get(&self, kind: StorageKind) -> Option<&StorageSpec> {
        self.services.iter().find(|s| s.kind == kind)
    }

    /// A catalog restricted to a single service (used by the Fig. 16–18
    /// "fixed storage" experiments).
    pub fn only(&self, kind: StorageKind) -> StorageCatalog {
        StorageCatalog {
            services: self
                .services
                .iter()
                .filter(|s| s.kind == kind)
                .cloned()
                .collect(),
        }
    }

    /// Services able to hold a model of `model_mb` megabytes.
    pub fn supporting(&self, model_mb: f64) -> impl Iterator<Item = &StorageSpec> {
        self.services
            .iter()
            .filter(move |s| s.supports_model(model_mb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_catalog_has_four_services() {
        let cat = StorageCatalog::aws_default();
        assert_eq!(cat.services().len(), 4);
        for kind in StorageKind::ALL {
            assert!(cat.get(kind).is_some(), "{kind} missing");
        }
    }

    #[test]
    fn latency_ordering_matches_table1() {
        // Table I: S3 high, DynamoDB medium, ElastiCache/VM-PS low.
        let cat = StorageCatalog::aws_default();
        let l = |k| cat.get(k).unwrap().latency_s;
        assert!(l(StorageKind::S3) > l(StorageKind::DynamoDb));
        assert!(l(StorageKind::DynamoDb) > l(StorageKind::ElastiCache));
        assert!(l(StorageKind::DynamoDb) > l(StorageKind::VmPs));
    }

    #[test]
    fn scaling_modes_match_table1() {
        let cat = StorageCatalog::aws_default();
        assert_eq!(cat.get(StorageKind::S3).unwrap().scaling, ScalingMode::Auto);
        assert_eq!(
            cat.get(StorageKind::DynamoDb).unwrap().scaling,
            ScalingMode::Auto
        );
        assert_eq!(
            cat.get(StorageKind::ElastiCache).unwrap().scaling,
            ScalingMode::Manual
        );
        assert_eq!(
            cat.get(StorageKind::VmPs).unwrap().scaling,
            ScalingMode::Manual
        );
    }

    #[test]
    fn only_vm_ps_aggregates_locally() {
        let cat = StorageCatalog::aws_default();
        for spec in cat.services() {
            assert_eq!(spec.aggregates_locally, spec.kind == StorageKind::VmPs);
        }
    }

    #[test]
    fn dynamodb_rejects_mobilenet() {
        // MobileNet's 12 MB model exceeds the 400 KB item limit (Table II's
        // N/A entries).
        let cat = StorageCatalog::aws_default();
        let supported: Vec<StorageKind> = cat.supporting(12.0).map(|s| s.kind).collect();
        assert!(!supported.contains(&StorageKind::DynamoDb));
        assert!(supported.contains(&StorageKind::S3));
        assert!(supported.contains(&StorageKind::VmPs));
    }

    #[test]
    fn only_restricts_catalog() {
        let cat = StorageCatalog::aws_default().only(StorageKind::ElastiCache);
        assert_eq!(cat.services().len(), 1);
        assert_eq!(cat.services()[0].kind, StorageKind::ElastiCache);
        assert!(cat.get(StorageKind::S3).is_none());
    }

    #[test]
    fn request_priced_services_are_cheap_class() {
        // Table I cost classes: request-priced ($ / $$) vs runtime-priced
        // ($$$). An hour of a runtime service costs more than 10k S3 PUTs.
        let cat = StorageCatalog::aws_default();
        let s3 = cat.get(StorageKind::S3).unwrap();
        let vm = cat.get(StorageKind::VmPs).unwrap();
        let s3_10k_puts = s3.pricing.put_cost(1.0) * 10_000.0;
        let vm_hour = vm.pricing.runtime_cost(3600.0);
        assert!(vm_hour > s3_10k_puts);
    }
}
