//! Account-level concurrency quota shared across platforms.
//!
//! AWS enforces the Lambda concurrency quota per *account*, not per job:
//! every function any tenant job invokes counts against one shared pool.
//! [`AccountQuota`] models that pool as a cheaply clonable handle
//! (`Arc`-backed, like [`ce_obs::Registry`]) that many [`FaasPlatform`]s
//! — or a fleet scheduler sitting above them — acquire from and release
//! to. Overload is a *typed, recoverable* outcome ([`QuotaExceeded`]),
//! never a panic: an admission controller reacts to it by queueing or
//! rejecting the job, which is exactly what `ce-cluster` does.
//!
//! [`FaasPlatform`]: crate::platform::FaasPlatform

use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// A concurrency request the shared quota could not satisfy.
///
/// Carries enough context for an admission controller to decide between
/// queueing (transient contention: `in_use` is high) and rejecting
/// (structural overload: `requested > limit` can never succeed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuotaExceeded {
    /// Concurrent functions the caller asked for.
    pub requested: u32,
    /// Functions already running against the quota at the time of the
    /// request (0 for a per-platform limit check).
    pub in_use: u32,
    /// The account-level concurrency limit.
    pub limit: u32,
}

impl QuotaExceeded {
    /// Whether the request could *never* succeed, even on an idle
    /// account (`requested > limit`), as opposed to transient contention.
    pub fn is_structural(&self) -> bool {
        self.requested > self.limit
    }
}

impl std::fmt::Display for QuotaExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "concurrency quota exceeded: requested {} with {} in use of limit {}",
            self.requested, self.in_use, self.limit
        )
    }
}

impl std::error::Error for QuotaExceeded {}

#[derive(Debug, Default)]
struct QuotaState {
    in_use: u32,
    peak: u32,
    grants: u64,
    rejections: u64,
}

/// The shared, account-level concurrency pool.
///
/// Cloning shares the underlying counter (a handle, not a copy), so one
/// quota can back many platforms. Acquire/release are explicit — the
/// holder decides how long a reservation spans (one atomic epoch for a
/// lone platform, a whole in-flight epoch wave for a fleet scheduler
/// that interleaves jobs in simulated time).
#[derive(Debug, Clone)]
pub struct AccountQuota {
    limit: u32,
    state: Arc<Mutex<QuotaState>>,
}

impl AccountQuota {
    /// Creates a quota of `limit` concurrent functions.
    pub fn new(limit: u32) -> Self {
        AccountQuota {
            limit,
            state: Arc::new(Mutex::new(QuotaState::default())),
        }
    }

    /// The account-level concurrency limit.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Functions currently reserved.
    pub fn in_use(&self) -> u32 {
        self.state.lock().expect("quota lock").in_use
    }

    /// Functions still available.
    pub fn available(&self) -> u32 {
        self.limit - self.in_use()
    }

    /// Current utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.limit == 0 {
            return 1.0;
        }
        f64::from(self.in_use()) / f64::from(self.limit)
    }

    /// Highest concurrent reservation ever observed.
    pub fn peak(&self) -> u32 {
        self.state.lock().expect("quota lock").peak
    }

    /// Successful acquisitions so far.
    pub fn grants(&self) -> u64 {
        self.state.lock().expect("quota lock").grants
    }

    /// Rejected acquisitions so far.
    pub fn rejections(&self) -> u64 {
        self.state.lock().expect("quota lock").rejections
    }

    /// Reserves `n` functions, or reports why it cannot.
    pub fn try_acquire(&self, n: u32) -> Result<(), QuotaExceeded> {
        let mut state = self.state.lock().expect("quota lock");
        if state.in_use + n > self.limit {
            state.rejections += 1;
            return Err(QuotaExceeded {
                requested: n,
                in_use: state.in_use,
                limit: self.limit,
            });
        }
        state.in_use += n;
        state.peak = state.peak.max(state.in_use);
        state.grants += 1;
        Ok(())
    }

    /// Returns `n` functions to the pool.
    ///
    /// # Panics
    /// Panics if `n` exceeds the outstanding reservation (a release
    /// without a matching acquire is a caller bug, not an overload
    /// condition).
    pub fn release(&self, n: u32) {
        let mut state = self.state.lock().expect("quota lock");
        assert!(
            n <= state.in_use,
            "releasing {n} functions with only {} reserved",
            state.in_use
        );
        state.in_use -= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_roundtrip() {
        let quota = AccountQuota::new(100);
        quota.try_acquire(60).unwrap();
        assert_eq!(quota.in_use(), 60);
        assert_eq!(quota.available(), 40);
        quota.try_acquire(40).unwrap();
        assert_eq!(quota.available(), 0);
        assert!((quota.utilization() - 1.0).abs() < 1e-12);
        quota.release(100);
        assert_eq!(quota.in_use(), 0);
        assert_eq!(quota.peak(), 100);
        assert_eq!(quota.grants(), 2);
    }

    #[test]
    fn overflow_is_a_typed_error() {
        let quota = AccountQuota::new(50);
        quota.try_acquire(30).unwrap();
        let err = quota.try_acquire(30).unwrap_err();
        assert_eq!(
            err,
            QuotaExceeded {
                requested: 30,
                in_use: 30,
                limit: 50
            }
        );
        assert!(!err.is_structural(), "30 alone would fit");
        assert_eq!(quota.rejections(), 1);
        // The failed request must not leak a partial reservation.
        assert_eq!(quota.in_use(), 30);
    }

    #[test]
    fn structural_overload_detected() {
        let quota = AccountQuota::new(50);
        let err = quota.try_acquire(80).unwrap_err();
        assert!(err.is_structural());
        assert!(err.to_string().contains("quota exceeded"));
    }

    #[test]
    fn clones_share_the_pool() {
        let quota = AccountQuota::new(10);
        let other = quota.clone();
        quota.try_acquire(7).unwrap();
        assert_eq!(other.available(), 3);
        assert!(other.try_acquire(4).is_err());
        other.release(7);
        assert_eq!(quota.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn unbalanced_release_panics() {
        let quota = AccountQuota::new(10);
        quota.try_acquire(2).unwrap();
        quota.release(3);
    }
}
