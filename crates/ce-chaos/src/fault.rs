//! The typed fault taxonomy: what can break, and with what severity.

use ce_storage::StorageKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Canonical spec-grammar token for a storage service (the primary names
/// `crate::parse` accepts, not the display aliases).
pub(crate) fn service_token(service: StorageKind) -> &'static str {
    match service {
        StorageKind::S3 => "s3",
        StorageKind::DynamoDb => "dynamodb",
        StorageKind::ElastiCache => "elasticache",
        StorageKind::VmPs => "vmps",
    }
}

/// One kind of injected fault, with its severity parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Each epoch attempt inside the window loses a worker fatally with
    /// probability `rate` (the whole BSP wave's progress for that epoch is
    /// wasted — barrier semantics mean one lost worker stalls everyone).
    WorkerCrash { rate: f64 },
    /// A one-shot correlated kill: the first epoch attempt inside the window
    /// loses `ceil(fraction * n)` workers at once (spot reclaim, AZ event).
    WaveKill { fraction: f64 },
    /// The storage service refuses all requests while the window is open;
    /// jobs bound to it must stall until the window closes.
    StorageOutage { service: StorageKind },
    /// Brownout: the service's latency is multiplied by `factor` and its
    /// bandwidth divided by `factor` while the window is open.
    StorageDegrade { service: StorageKind, factor: f64 },
    /// Each invocation wave inside the window is throttled (HTTP 429) with
    /// probability `rate` before any worker starts.
    ThrottleStorm { rate: f64 },
    /// Cold-start mean latency is multiplied by `factor` inside the window
    /// (placement pressure, image-pull storms).
    ColdStartSpike { factor: f64 },
}

impl FaultKind {
    /// Short stable label used in spec strings, counters, and trace events.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::WorkerCrash { .. } => "crash",
            FaultKind::WaveKill { .. } => "wave",
            FaultKind::StorageOutage { .. } => "outage",
            FaultKind::StorageDegrade { .. } => "degrade",
            FaultKind::ThrottleStorm { .. } => "throttle",
            FaultKind::ColdStartSpike { .. } => "coldspike",
        }
    }

    /// True when the fault's severity is a no-op (rate 0, factor <= 1).
    /// Zero-severity faults never draw from the fault stream, which is what
    /// makes a zero-fault schedule bit-identical to no schedule at all.
    pub fn is_zero(&self) -> bool {
        match self {
            FaultKind::WorkerCrash { rate } | FaultKind::ThrottleStorm { rate } => *rate <= 0.0,
            FaultKind::WaveKill { fraction } => *fraction <= 0.0,
            FaultKind::StorageOutage { .. } => false,
            FaultKind::StorageDegrade { factor, .. } | FaultKind::ColdStartSpike { factor } => {
                *factor <= 1.0
            }
        }
    }
}

impl fmt::Display for FaultKind {
    /// The fault's head clause in the `--chaos` spec grammar, e.g.
    /// `crash:0.2` or `degrade:elasticache:x4`. Inverse of the parser's
    /// head grammar for in-range severities.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::WorkerCrash { rate } => write!(f, "crash:{rate}"),
            FaultKind::WaveKill { fraction } => write!(f, "wave:{fraction}"),
            FaultKind::StorageOutage { service } => {
                write!(f, "outage:{}", service_token(*service))
            }
            FaultKind::StorageDegrade { service, factor } => {
                write!(f, "degrade:{}:x{factor}", service_token(*service))
            }
            FaultKind::ThrottleStorm { rate } => write!(f, "throttle:{rate}"),
            FaultKind::ColdStartSpike { factor } => write!(f, "coldspike:x{factor}"),
        }
    }
}

/// A fault active over the half-open simulated-time window
/// `[start_s, end_s)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    pub start_s: f64,
    pub end_s: f64,
    pub fault: FaultKind,
}

impl FaultWindow {
    pub fn contains(&self, t_s: f64) -> bool {
        t_s >= self.start_s && t_s < self.end_s
    }
}

impl fmt::Display for FaultWindow {
    /// The window clause `fault@start..end`; an unbounded end renders as
    /// `inf`, matching what the parser accepts.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}..", self.fault, self.start_s)?;
        if self.end_s.is_infinite() {
            f.write_str("inf")
        } else {
            write!(f, "{}", self.end_s)
        }
    }
}

/// A Poisson burst process: windows of `fault`, each `duration_s` long, with
/// arrival times drawn at compile time at a mean rate of `per_hour`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstSpec {
    pub fault: FaultKind,
    pub per_hour: f64,
    pub duration_s: f64,
}

impl fmt::Display for BurstSpec {
    /// The burst clause `fault~per_hour/hxduration`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}~{}/hx{}", self.fault, self.per_hour, self.duration_s)
    }
}
