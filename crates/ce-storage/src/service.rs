//! Storage service descriptions (Table I).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The four external storage services evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageKind {
    /// Amazon S3: auto-scaling object store, high latency, cheapest.
    S3,
    /// Amazon DynamoDB: auto-scaling KV store, medium latency, 400 KB
    /// object-size limit, priced per capacity unit (per KB written).
    DynamoDb,
    /// Amazon ElastiCache (Redis): manually provisioned cache, low latency,
    /// priced per runtime.
    ElastiCache,
    /// A user-managed EC2 parameter server: low latency, priced per
    /// runtime, and — uniquely — able to aggregate gradients *locally*.
    VmPs,
}

impl StorageKind {
    /// All four services, in the paper's Table I order.
    pub const ALL: [StorageKind; 4] = [
        StorageKind::S3,
        StorageKind::DynamoDb,
        StorageKind::ElastiCache,
        StorageKind::VmPs,
    ];

    /// Single-letter label used by Fig. 18 ("D, S, E, and V").
    pub fn letter(self) -> char {
        match self {
            StorageKind::S3 => 'S',
            StorageKind::DynamoDb => 'D',
            StorageKind::ElastiCache => 'E',
            StorageKind::VmPs => 'V',
        }
    }
}

impl fmt::Display for StorageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StorageKind::S3 => "S3",
            StorageKind::DynamoDb => "DynamoDB",
            StorageKind::ElastiCache => "ElastiCache",
            StorageKind::VmPs => "VM-PS",
        };
        f.write_str(name)
    }
}

/// Whether capacity scales automatically with load (Table I column 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingMode {
    /// The provider scales transparently (S3, DynamoDB).
    Auto,
    /// The user provisions fixed capacity (ElastiCache, VM-PS).
    Manual,
}

/// How a service charges (Table I column 3; Eq. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PricingModel {
    /// Charged per data request (S3, DynamoDB).
    ///
    /// `per_put` / `per_get` are dollars per request for objects up to
    /// `unit_kb` kilobytes; larger objects consume `ceil(size/unit_kb)`
    /// units (this models DynamoDB's per-KB write units; S3 uses a single
    /// flat unit with a very large `unit_kb`).
    PerRequest {
        per_put: f64,
        per_get: f64,
        unit_kb: f64,
    },
    /// Charged per provisioned runtime (ElastiCache, VM-PS), in dollars per
    /// hour. Eq. 5 bills `(t/60 + 1)` minutes for an epoch of `t` seconds.
    PerRuntime { dollars_per_hour: f64 },
}

impl PricingModel {
    /// Dollars for one PUT of `size_mb` megabytes (0 for runtime pricing).
    pub fn put_cost(&self, size_mb: f64) -> f64 {
        match *self {
            PricingModel::PerRequest {
                per_put, unit_kb, ..
            } => per_put * (size_mb * 1024.0 / unit_kb).max(1.0).ceil(),
            PricingModel::PerRuntime { .. } => 0.0,
        }
    }

    /// Dollars for one GET of `size_mb` megabytes (0 for runtime pricing).
    pub fn get_cost(&self, size_mb: f64) -> f64 {
        match *self {
            PricingModel::PerRequest {
                per_get, unit_kb, ..
            } => per_get * (size_mb * 1024.0 / unit_kb).max(1.0).ceil(),
            PricingModel::PerRuntime { .. } => 0.0,
        }
    }

    /// Dollars for keeping the service attached for `secs` seconds.
    ///
    /// Per Eq. 5 runtime-charged services bill whole minutes, with one
    /// minute of minimum billing: `(t/60 + 1) · p_s`.
    pub fn runtime_cost(&self, secs: f64) -> f64 {
        match *self {
            PricingModel::PerRequest { .. } => 0.0,
            PricingModel::PerRuntime { dollars_per_hour } => {
                let per_minute = dollars_per_hour / 60.0;
                (secs / 60.0 + 1.0) * per_minute
            }
        }
    }

    /// True if this service charges per request.
    pub fn is_per_request(&self) -> bool {
        matches!(self, PricingModel::PerRequest { .. })
    }
}

/// A complete description of one external storage service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageSpec {
    /// Which service this is.
    pub kind: StorageKind,
    /// Table I scaling column.
    pub scaling: ScalingMode,
    /// Sustained per-connection bandwidth, MB/s (`b_s` in Eq. 3).
    pub bandwidth_mbps: f64,
    /// Per-request latency, seconds (`ℓ_s` in Eq. 3).
    pub latency_s: f64,
    /// Pricing model (`p_s` in Eq. 5).
    pub pricing: PricingModel,
    /// Maximum object size in MB, if the service has one (DynamoDB: 400 KB).
    pub max_object_mb: Option<f64>,
    /// Whether the service aggregates gradients locally (VM-PS; Fig. 5).
    /// Local aggregation yields the `(2n − 2)` transfer pattern of Eq. 3.
    pub aggregates_locally: bool,
    /// Total provisioned capacity in MB/s for manually-scaled services,
    /// shared across concurrent clients. `None` (the default catalog)
    /// models no contention — per-connection bandwidth holds at any
    /// concurrency, as for auto-scaling services. Set it to study
    /// saturation of a fixed-size ElastiCache node or parameter server.
    pub aggregate_capacity_mbps: Option<f64>,
}

impl StorageSpec {
    /// Whether a model of `model_mb` megabytes fits this service's object
    /// size limit (Table II marks DynamoDB "N/A" for MobileNet and larger).
    pub fn supports_model(&self, model_mb: f64) -> bool {
        self.max_object_mb.is_none_or(|cap| model_mb <= cap)
    }

    /// Time in seconds to move one object of `size_mb` megabytes once:
    /// `size/b_s + ℓ_s` (the bracketed term of Eq. 3).
    pub fn transfer_time(&self, size_mb: f64) -> f64 {
        debug_assert!(size_mb >= 0.0);
        size_mb / self.bandwidth_mbps + self.latency_s
    }

    /// Per-connection bandwidth when `concurrency` clients transfer at
    /// once: the nominal per-connection rate, capped by an equal share
    /// of the aggregate capacity if one is provisioned.
    pub fn effective_bandwidth(&self, concurrency: u32) -> f64 {
        let share = self
            .aggregate_capacity_mbps
            .map_or(f64::INFINITY, |cap| cap / f64::from(concurrency.max(1)));
        self.bandwidth_mbps.min(share)
    }

    /// Transfer time under concurrent load (see
    /// [`Self::effective_bandwidth`]).
    pub fn transfer_time_contended(&self, size_mb: f64, concurrency: u32) -> f64 {
        debug_assert!(size_mb >= 0.0);
        size_mb / self.effective_bandwidth(concurrency) + self.latency_s
    }

    /// Returns this spec with a provisioned aggregate capacity.
    pub fn with_aggregate_capacity(mut self, capacity_mbps: f64) -> Self {
        assert!(capacity_mbps > 0.0);
        self.aggregate_capacity_mbps = Some(capacity_mbps);
        self
    }

    /// Returns this spec under a brownout: per-request latency multiplied
    /// and bandwidth (plus any aggregate capacity) divided by `factor`.
    /// A factor of 1.0 returns the spec unchanged, so applying a
    /// zero-severity degradation window is exactly the healthy service.
    pub fn degraded(&self, factor: f64) -> Self {
        assert!(factor >= 1.0, "degradation factor must be >= 1");
        let mut spec = self.clone();
        spec.latency_s *= factor;
        spec.bandwidth_mbps /= factor;
        spec.aggregate_capacity_mbps = spec.aggregate_capacity_mbps.map(|c| c / factor);
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn per_request(per_put: f64, per_get: f64, unit_kb: f64) -> PricingModel {
        PricingModel::PerRequest {
            per_put,
            per_get,
            unit_kb,
        }
    }

    #[test]
    fn flat_request_pricing_charges_one_unit() {
        let p = per_request(5e-6, 4e-7, 1e9);
        assert_eq!(p.put_cost(12.0), 5e-6);
        assert_eq!(p.get_cost(0.001), 4e-7);
    }

    #[test]
    fn per_kb_pricing_scales_with_size() {
        // DynamoDB-style: 1 KB write units.
        let p = per_request(1.25e-6, 2.5e-7, 1.0);
        // 0.1 MB = 102.4 KB -> 103 units.
        assert_eq!(p.put_cost(0.1), 1.25e-6 * 103.0);
        // Tiny object still pays one unit.
        assert_eq!(p.put_cost(0.0001), 1.25e-6);
    }

    #[test]
    fn runtime_pricing_bills_whole_minutes_plus_one() {
        let p = PricingModel::PerRuntime {
            dollars_per_hour: 0.60,
        };
        let per_minute = 0.01;
        // 120 s -> (2 + 1) minutes.
        assert!((p.runtime_cost(120.0) - 3.0 * per_minute).abs() < 1e-12);
        // Zero runtime still bills the 1-minute floor.
        assert!((p.runtime_cost(0.0) - per_minute).abs() < 1e-12);
        assert_eq!(p.put_cost(10.0), 0.0);
        assert_eq!(p.get_cost(10.0), 0.0);
    }

    #[test]
    fn request_pricing_has_no_runtime_component() {
        let p = per_request(5e-6, 4e-7, 1e9);
        assert_eq!(p.runtime_cost(3600.0), 0.0);
        assert!(p.is_per_request());
    }

    #[test]
    fn object_size_limit_enforced() {
        let spec = StorageSpec {
            kind: StorageKind::DynamoDb,
            scaling: ScalingMode::Auto,
            bandwidth_mbps: 100.0,
            latency_s: 0.01,
            pricing: per_request(1.25e-6, 2.5e-7, 1.0),
            max_object_mb: Some(0.4),
            aggregates_locally: false,
            aggregate_capacity_mbps: None,
        };
        assert!(spec.supports_model(0.39));
        assert!(!spec.supports_model(12.0)); // MobileNet is 12 MB -> N/A
    }

    #[test]
    fn transfer_time_is_bandwidth_plus_latency() {
        let spec = StorageSpec {
            kind: StorageKind::S3,
            scaling: ScalingMode::Auto,
            bandwidth_mbps: 100.0,
            latency_s: 0.05,
            pricing: per_request(5e-6, 4e-7, 1e9),
            max_object_mb: None,
            aggregates_locally: false,
            aggregate_capacity_mbps: None,
        };
        assert!((spec.transfer_time(10.0) - 0.15).abs() < 1e-12);
        assert!((spec.transfer_time(0.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn degraded_scales_latency_up_and_bandwidth_down() {
        let spec = StorageSpec {
            kind: StorageKind::ElastiCache,
            scaling: ScalingMode::Manual,
            bandwidth_mbps: 100.0,
            latency_s: 0.002,
            pricing: PricingModel::PerRuntime {
                dollars_per_hour: 0.1,
            },
            max_object_mb: None,
            aggregates_locally: false,
            aggregate_capacity_mbps: Some(1000.0),
        };
        let slow = spec.degraded(4.0);
        assert!((slow.latency_s - 0.008).abs() < 1e-12);
        assert!((slow.bandwidth_mbps - 25.0).abs() < 1e-12);
        assert_eq!(slow.aggregate_capacity_mbps, Some(250.0));
        // A factor of 1 is exactly the healthy service.
        assert_eq!(spec.degraded(1.0), spec);
        // Transfer time strictly worsens.
        assert!(slow.transfer_time(12.0) > spec.transfer_time(12.0));
    }

    #[test]
    fn display_and_letters() {
        assert_eq!(StorageKind::S3.to_string(), "S3");
        assert_eq!(StorageKind::VmPs.to_string(), "VM-PS");
        let letters: String = StorageKind::ALL.iter().map(|k| k.letter()).collect();
        assert_eq!(letters, "SDEV");
    }
}
