//! Adaptive-scheduler benchmarks (Fig. 21b): per-epoch decision latency
//! with and without Pareto pruning, plus the online curve fit.

use ce_ml::curve::{CurveParams, LossCurve};
use ce_ml::model::ModelFamily;
use ce_models::{Environment, Workload};
use ce_pareto::ParetoProfiler;
use ce_sim_core::rng::SimRng;
use ce_training::{AdaptiveScheduler, LossCurveFitter, SchedulerConfig, TrainingObjective};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_epoch_decision(c: &mut Criterion) {
    let env = Environment::aws_default();
    let w = Workload::mobilenet_cifar10();
    let profile = ParetoProfiler::new(&env).profile_workload(&w);
    let params = CurveParams::for_workload(ModelFamily::MobileNet, "Cifar10");

    let mut group = c.benchmark_group("scheduler/epoch-decision");
    for (name, use_pareto) in [("pareto", true), ("wo-pa-full-grid", false)] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut sched = AdaptiveScheduler::new(
                    &profile,
                    TrainingObjective::MinJctGivenBudget { budget: 50.0 },
                    0.2,
                    params.initial,
                    SchedulerConfig {
                        use_pareto,
                        delta: 0.01,
                        ..SchedulerConfig::default()
                    },
                );
                sched.initial_allocation(40.0);
                let mut run = LossCurve::sample_optimal(&params, SimRng::new(3));
                for _ in 0..30 {
                    black_box(sched.on_epoch_end(run.next_epoch(), 0.3, 30.0));
                }
                black_box(sched.stats())
            });
        });
    }
    group.finish();
}

fn bench_curve_fit(c: &mut Criterion) {
    let params = CurveParams::for_workload(ModelFamily::LogisticRegression, "Higgs");
    let mut group = c.benchmark_group("scheduler/curve-fit");
    for epochs in [5usize, 20, 60] {
        let mut run = LossCurve::sample_optimal(&params, SimRng::new(9));
        let history: Vec<f64> = (0..epochs).map(|_| run.next_epoch()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(epochs), &history, |b, h| {
            let fitter = LossCurveFitter::new(params.initial);
            b.iter(|| black_box(fitter.fit(black_box(h))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epoch_decision, bench_curve_fit);
criterion_main!(benches);
