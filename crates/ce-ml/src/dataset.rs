//! The evaluation datasets of §IV-A.
//!
//! Sizes are what the analytical models consume: `D` (total bytes loaded
//! from storage, in MB) and the instance count (which, with the batch size
//! `b_z`, fixes the iteration count `k = D / (n · b_z)` of Eq. 2 — the
//! paper counts `k` in batches of instances, so we track both bytes and
//! instances).

use serde::{Deserialize, Serialize};

/// A training dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Human-readable name as used in the paper's figures.
    pub name: String,
    /// Total dataset size in MB (`D` of Table III).
    pub size_mb: f64,
    /// Number of training instances.
    pub num_instances: u64,
    /// Feature dimensionality of one instance.
    pub features: u32,
    /// Default mini-batch size `b_z` (instances per batch; Table IV).
    pub default_batch: u32,
}

impl DatasetSpec {
    /// Higgs: 11 M instances × 28 features (binary classification from
    /// Monte-Carlo simulation). ~8 GB on disk as CSV; ~1.2 GB as packed
    /// f32, we use the packed size since workers load binary shards.
    pub fn higgs() -> Self {
        DatasetSpec {
            name: "Higgs".to_owned(),
            num_instances: 11_000_000,
            features: 28,
            size_mb: 11_000_000.0 * 28.0 * 4.0 / (1024.0 * 1024.0),
            default_batch: 10_000,
        }
    }

    /// YFCC100M subset: image feature vectors of 4096 dimensions. The
    /// paper uses a tagged subset; we size it at 400 k instances.
    pub fn yfcc() -> Self {
        DatasetSpec {
            name: "YFCC".to_owned(),
            num_instances: 400_000,
            features: 4096,
            size_mb: 400_000.0 * 4096.0 * 4.0 / (1024.0 * 1024.0),
            default_batch: 800,
        }
    }

    /// Cifar10: 60 k 32×32×3 images in 10 classes (50 k train).
    pub fn cifar10() -> Self {
        DatasetSpec {
            name: "Cifar10".to_owned(),
            num_instances: 50_000,
            features: 32 * 32 * 3,
            size_mb: 50_000.0 * (32.0 * 32.0 * 3.0) / (1024.0 * 1024.0),
            default_batch: 128,
        }
    }

    /// IMDb: 25 k movie-review sentences, average length 292 tokens.
    /// Sized as token-id sequences padded to 320 tokens of 4 bytes.
    pub fn imdb() -> Self {
        DatasetSpec {
            name: "IMDb".to_owned(),
            num_instances: 25_000,
            features: 320,
            size_mb: 25_000.0 * 320.0 * 4.0 / (1024.0 * 1024.0),
            default_batch: 32,
        }
    }

    /// Iterations per epoch for `n` workers and batch size `b_z`:
    /// `k = ceil(instances / (n · b_z))` (Eq. 2 text).
    ///
    /// # Panics
    /// Panics if `n` or `batch` is zero.
    pub fn iterations_per_epoch(&self, n: u32, batch: u32) -> u32 {
        assert!(n > 0 && batch > 0, "n and batch must be positive");
        let per_worker = self.num_instances.div_ceil(u64::from(n));
        u32::try_from(per_worker.div_ceil(u64::from(batch))).expect("iteration count fits u32")
    }

    /// Megabytes of training data each of `n` workers holds (the paper
    /// distributes `D` evenly across functions).
    pub fn shard_mb(&self, n: u32) -> f64 {
        assert!(n > 0);
        self.size_mb / f64::from(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higgs_dimensions() {
        let d = DatasetSpec::higgs();
        assert_eq!(d.num_instances, 11_000_000);
        assert_eq!(d.features, 28);
        assert!(d.size_mb > 1000.0 && d.size_mb < 1400.0, "{}", d.size_mb);
    }

    #[test]
    fn iteration_count_matches_formula() {
        let d = DatasetSpec::higgs();
        // n = 10, batch = 10k: 11e6 / 10 workers = 1.1e6 each -> 110 iters.
        assert_eq!(d.iterations_per_epoch(10, 10_000), 110);
        // n = 1: all 11e6 -> 1100 iterations.
        assert_eq!(d.iterations_per_epoch(1, 10_000), 1100);
    }

    #[test]
    fn iteration_count_rounds_up() {
        let d = DatasetSpec::cifar10();
        // 50k / 7 workers = 7143 instances; 7143 / 128 = 55.8 -> 56.
        assert_eq!(d.iterations_per_epoch(7, 128), 56);
    }

    #[test]
    fn more_workers_fewer_iterations() {
        let d = DatasetSpec::yfcc();
        let k10 = d.iterations_per_epoch(10, 800);
        let k50 = d.iterations_per_epoch(50, 800);
        assert!(k50 < k10);
    }

    #[test]
    fn shards_partition_dataset() {
        let d = DatasetSpec::cifar10();
        let n = 8;
        assert!((d.shard_mb(n) * f64::from(n) - d.size_mb).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_workers_rejected() {
        DatasetSpec::higgs().iterations_per_epoch(0, 100);
    }

    #[test]
    fn all_paper_datasets_have_positive_size() {
        for d in [
            DatasetSpec::higgs(),
            DatasetSpec::yfcc(),
            DatasetSpec::cifar10(),
            DatasetSpec::imdb(),
        ] {
            assert!(d.size_mb > 0.0, "{}", d.name);
            assert!(d.num_instances > 0);
            assert!(d.default_batch > 0);
        }
    }

    #[test]
    fn table4_batch_sizes() {
        assert_eq!(DatasetSpec::higgs().default_batch, 10_000);
        assert_eq!(DatasetSpec::yfcc().default_batch, 800);
        assert_eq!(DatasetSpec::cifar10().default_batch, 128);
        assert_eq!(DatasetSpec::imdb().default_batch, 32);
    }
}
