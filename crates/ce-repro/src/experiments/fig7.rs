//! Fig. 7: scatter of allocations in (epoch time, epoch cost) space with
//! the Pareto boundary, for LR over Higgs.

use crate::context;
use crate::report::Table;
use ce_models::{Environment, Workload};
use ce_sim_core::rng::SimRng;
use serde_json::{json, Value};

/// Samples 50 allocations (as the paper's figure does) and prints them
/// alongside the boundary.
pub fn run(_quick: bool) -> Value {
    let env = Environment::aws_default();
    let w = Workload::lr_higgs();
    let profile = context::full_profile(&env, &w);

    // Sample 50 points for the scatter, like the figure.
    let mut rng = SimRng::new(7).derive("fig7");
    let mut indices: Vec<usize> = (0..profile.points().len()).collect();
    rng.shuffle(&mut indices);
    let scatter: Vec<Value> = indices
        .iter()
        .take(50)
        .map(|&i| {
            let p = &profile.points()[i];
            json!({
                "alloc": p.alloc.to_string(),
                "time_s": p.time_s(),
                "cost_usd": p.cost_usd(),
            })
        })
        .collect();

    let boundary: Vec<Value> = profile
        .boundary()
        .iter()
        .map(|p| {
            json!({
                "alloc": p.alloc.to_string(),
                "time_s": p.time_s(),
                "cost_usd": p.cost_usd(),
            })
        })
        .collect();

    println!(
        "Fig. 7 — Pareto boundary of LR-Higgs ({} allocations profiled, {} on the boundary, {} pruned)\n",
        profile.points().len(),
        boundary.len(),
        profile.pruned_count()
    );
    let mut table = Table::new(["Boundary allocation", "epoch time", "epoch cost"]);
    for p in profile.boundary() {
        table.row([
            p.alloc.to_string(),
            format!("{:.1}s", p.time_s()),
            format!("${:.5}", p.cost_usd()),
        ]);
    }
    table.print();

    json!({
        "fig7": {
            "profiled": profile.points().len(),
            "pruned": profile.pruned_count(),
            "scatter": scatter,
            "boundary": boundary,
        }
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn boundary_nonempty_and_pruning_substantial() {
        let v = super::run(true);
        let fig = &v["fig7"];
        assert!(fig["boundary"].as_array().unwrap().len() >= 4);
        assert!(fig["pruned"].as_u64().unwrap() > 100);
        assert_eq!(fig["scatter"].as_array().unwrap().len(), 50);
    }
}
