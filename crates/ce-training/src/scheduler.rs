//! The adaptive resource scheduler (Algorithm 2).
//!
//! The scheduler starts from the offline estimate (Lines 2–7), refits the
//! loss curve after every epoch (Line 8), deducts the epoch's cost from
//! the budget (Line 9), and re-predicts the total epochs to the target
//! (Line 10). When the prediction drifts by more than `δ` relative to the
//! last accepted prediction (Line 11), it re-selects the best allocation
//! from the candidate set under the *remaining* budget (or QoS slack) and
//! the *remaining* epochs (Lines 12–13).
//!
//! `δ` trades responsiveness against restart churn (Fig. 21c): small
//! values restart functions on every noise wiggle; large values respond
//! too late. The paper defaults to `δ = 0.1`.

use crate::predict::OnlinePredictor;
use ce_models::Allocation;
use ce_obs::{Counter, Registry};
use ce_pareto::{AllocPoint, Profile};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The training objective (Eq. 13–16).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrainingObjective {
    /// Minimize JCT subject to a budget (Eq. 13–14).
    MinJctGivenBudget {
        /// Budget `b_c` in dollars.
        budget: f64,
    },
    /// Minimize cost subject to a QoS deadline (Eq. 15–16).
    MinCostGivenQos {
        /// Deadline `τ` in seconds.
        qos_s: f64,
    },
}

/// Scheduler tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Relative prediction-drift threshold `δ` that triggers resource
    /// adjustment (paper default 0.1).
    pub delta: f64,
    /// Whether to hide adjustment behind the delayed restart (Fig. 8).
    pub delayed_restart: bool,
    /// Whether to search only the Pareto boundary (`false` = the WO-pa
    /// ablation of Fig. 21b).
    pub use_pareto: bool,
    /// Epochs of history required before online predictions are acted
    /// on (very early fits are dominated by noise).
    pub min_history: u32,
    /// Fraction of the remaining budget/deadline the selection may
    /// commit; the slack absorbs stragglers, cold starts, and restart
    /// billing so the constraint holds on *measured* totals.
    pub safety_margin: f64,
    /// Cap on how far an online prediction may exceed the initial
    /// estimate (guards against transient fit explosions when the fitted
    /// floor grazes the target).
    pub max_prediction_blowup: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            delta: 0.1,
            delayed_restart: true,
            use_pareto: true,
            min_history: 5,
            safety_margin: 0.9,
            max_prediction_blowup: 4.0,
        }
    }
}

/// The scheduler's verdict after an epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Keep the current allocation.
    Keep,
    /// Switch to a new allocation (restart functions).
    Switch {
        /// The allocation to switch to.
        to: Allocation,
    },
}

/// Work counters for the Fig. 21b/21c overhead analysis.
///
/// A read-only snapshot: the live counts are `ce-obs` counters owned by
/// the scheduler (`scheduler.evaluations` / `scheduler.adjustments` /
/// `scheduler.triggers`), so a shared registry sees them without any
/// side-channel bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Allocation candidates evaluated across all selections.
    pub evaluations: u64,
    /// Resource adjustments (function restarts) triggered.
    pub adjustments: u32,
    /// δ-drift events that caused a re-selection (whether or not the
    /// selected allocation changed).
    pub triggers: u32,
}

/// The Algorithm 2 scheduler.
#[derive(Debug)]
pub struct AdaptiveScheduler {
    candidates: Vec<AllocPoint>,
    objective: TrainingObjective,
    target_loss: f64,
    config: SchedulerConfig,
    predictor: OnlinePredictor,
    /// Latest accepted total-epoch prediction `e` (0 before the offline
    /// estimate, per Algorithm 2's initialization).
    accepted_prediction: f64,
    /// The offline estimate used at initialization (anchor for the
    /// prediction-blowup guard).
    initial_estimate: f64,
    /// Last few raw online predictions; the scheduler acts on their
    /// median so a single-epoch fit spike cannot trigger a panic
    /// reallocation.
    recent_predictions: Vec<f64>,
    /// Dollars spent so far.
    spent: f64,
    /// Seconds elapsed so far.
    elapsed: f64,
    /// Epochs completed (`e'`).
    epochs_done: u32,
    current: Option<Allocation>,
    /// Memoized [`Self::select_best`] results keyed by the exact bits of
    /// `(remaining_epochs, r_eff)`. The selection is a pure function of
    /// that pair given the candidate set and objective (both fixed at
    /// construction), so hits are bit-identical to recomputation. Hits
    /// still charge `scheduler.evaluations` — the counter models decision
    /// *work requested*, and the derived scheduling overhead must not
    /// change with the cache.
    select_cache: HashMap<(u64, u64), Option<AllocPoint>>,
    /// Observability sink; private by default, shareable via
    /// [`Self::bind_registry`].
    obs: Registry,
    evaluations: Counter,
    adjustments: Counter,
    triggers: Counter,
}

impl Clone for AdaptiveScheduler {
    /// Clones into an *independent* scheduler: the work counters are
    /// copied by value into a fresh registry, so the clone's stats do not
    /// feed back into the original's sink.
    fn clone(&self) -> Self {
        let obs = Registry::new();
        let (evaluations, adjustments, triggers) = Self::handles(&obs);
        evaluations.add(self.evaluations.get());
        adjustments.add(self.adjustments.get());
        triggers.add(self.triggers.get());
        AdaptiveScheduler {
            candidates: self.candidates.clone(),
            objective: self.objective,
            target_loss: self.target_loss,
            config: self.config,
            predictor: self.predictor.clone(),
            accepted_prediction: self.accepted_prediction,
            initial_estimate: self.initial_estimate,
            recent_predictions: self.recent_predictions.clone(),
            spent: self.spent,
            elapsed: self.elapsed,
            epochs_done: self.epochs_done,
            current: self.current,
            select_cache: self.select_cache.clone(),
            obs,
            evaluations,
            adjustments,
            triggers,
        }
    }
}

impl AdaptiveScheduler {
    /// Creates a scheduler over a profiled workload.
    ///
    /// `initial_loss` anchors the online fitter (the untrained model's
    /// loss, observable before training).
    pub fn new(
        profile: &Profile,
        objective: TrainingObjective,
        target_loss: f64,
        initial_loss: f64,
        config: SchedulerConfig,
    ) -> Self {
        let candidates = if config.use_pareto {
            profile.boundary().into_iter().copied().collect()
        } else {
            profile.points().to_vec()
        };
        let obs = Registry::new();
        let (evaluations, adjustments, triggers) = Self::handles(&obs);
        AdaptiveScheduler {
            candidates,
            objective,
            target_loss,
            config,
            predictor: OnlinePredictor::new(initial_loss),
            accepted_prediction: 0.0,
            initial_estimate: 0.0,
            recent_predictions: Vec::new(),
            spent: 0.0,
            elapsed: 0.0,
            epochs_done: 0,
            current: None,
            select_cache: HashMap::new(),
            obs,
            evaluations,
            adjustments,
            triggers,
        }
    }

    fn handles(registry: &Registry) -> (Counter, Counter, Counter) {
        (
            registry.counter("scheduler.evaluations"),
            registry.counter("scheduler.adjustments"),
            registry.counter("scheduler.triggers"),
        )
    }

    /// Re-homes the work counters into `registry` (e.g. a job-wide or the
    /// process-global sink), carrying the counts accumulated so far.
    /// Counter names are shared, so schedulers bound to the same registry
    /// aggregate; [`Self::stats`] then reports the aggregate.
    pub fn bind_registry(&mut self, registry: &Registry) {
        let carried = (
            self.evaluations.get(),
            self.adjustments.get(),
            self.triggers.get(),
        );
        self.obs = registry.clone();
        let (evaluations, adjustments, triggers) = Self::handles(registry);
        evaluations.add(carried.0);
        adjustments.add(carried.1);
        triggers.add(carried.2);
        self.evaluations = evaluations;
        self.adjustments = adjustments;
        self.triggers = triggers;
    }

    /// The registry the work counters live in.
    pub fn registry(&self) -> &Registry {
        &self.obs
    }

    /// The target loss `σ*`.
    pub fn target_loss(&self) -> f64 {
        self.target_loss
    }

    /// Snapshot of the work counters.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            evaluations: self.evaluations.get(),
            adjustments: u32::try_from(self.adjustments.get()).unwrap_or(u32::MAX),
            triggers: u32::try_from(self.triggers.get()).unwrap_or(u32::MAX),
        }
    }

    /// Latest accepted total-epoch prediction.
    pub fn predicted_total_epochs(&self) -> f64 {
        self.accepted_prediction
    }

    /// The currently selected allocation, once initialized.
    pub fn current_allocation(&self) -> Option<Allocation> {
        self.current
    }

    /// Whether the delayed-restart optimization is on.
    pub fn delayed_restart(&self) -> bool {
        self.config.delayed_restart
    }

    /// Algorithm 2 Lines 2–7: pick the initial allocation from the
    /// offline epoch estimate.
    pub fn initial_allocation(&mut self, offline_total_epochs: f64) -> Allocation {
        assert!(offline_total_epochs > 0.0);
        self.initial_estimate = offline_total_epochs;
        self.accepted_prediction = offline_total_epochs;
        let point = self
            .select_best(offline_total_epochs)
            .expect("candidate set not empty");
        self.current = Some(point.alloc);
        point.alloc
    }

    /// Algorithm 2 Lines 8–15: observe the epoch, refit, and decide.
    pub fn on_epoch_end(
        &mut self,
        observed_loss: f64,
        epoch_cost: f64,
        epoch_time_s: f64,
    ) -> Decision {
        self.predictor.observe(observed_loss);
        self.spent += epoch_cost;
        self.elapsed += epoch_time_s;
        self.epochs_done += 1;

        if self.predictor.epochs_observed() < self.config.min_history {
            return Decision::Keep;
        }
        let Some(prediction) = self.predictor.predict(self.target_loss) else {
            return Decision::Keep;
        };
        // Guard against transient fit explosions (a fitted floor that
        // grazes the target sends epochs_to toward infinity for an epoch
        // or two): cap relative to the initial estimate, and act on the
        // median of the last three raw predictions so one bad fit cannot
        // trigger a panic reallocation.
        let cap = if self.initial_estimate > 0.0 {
            self.config.max_prediction_blowup * self.initial_estimate
        } else {
            f64::INFINITY
        };
        self.recent_predictions.push(prediction.total_epochs);
        if self.recent_predictions.len() > 3 {
            self.recent_predictions.remove(0);
        }
        let mut sorted = self.recent_predictions.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let predicted_total = median.min(cap).max(f64::from(self.epochs_done));

        let drift = if self.accepted_prediction > 0.0 {
            (predicted_total - self.accepted_prediction).abs() / self.accepted_prediction
        } else {
            f64::INFINITY
        };
        if drift <= self.config.delta {
            return Decision::Keep;
        }
        self.accepted_prediction = predicted_total;
        self.triggers.inc();
        let remaining = (predicted_total - f64::from(self.epochs_done)).max(1.0);
        let Some(point) = self.select_best(remaining) else {
            return Decision::Keep;
        };
        let alloc = point.alloc;
        if Some(alloc) == self.current {
            return Decision::Keep;
        }
        self.current = Some(alloc);
        self.adjustments.inc();
        Decision::Switch { to: alloc }
    }

    /// Damage-limitation selection when no candidate satisfies the
    /// constraint outright: among candidates within
    /// `1 + FALLBACK_TOLERANCE` of the best constrained metric, minimize
    /// the cost × time product (the scale-free "knee"). The boundary's
    /// extreme tails trade the last few percent of one metric for orders
    /// of magnitude of the other — a scheduler that is going to miss its
    /// constraint anyway must not take that trade.
    const FALLBACK_TOLERANCE: f64 = 0.5;

    fn fallback<FC>(candidates: &[AllocPoint], constrained: FC) -> Option<AllocPoint>
    where
        FC: Fn(&AllocPoint) -> f64,
    {
        let best = candidates
            .iter()
            .map(&constrained)
            .fold(f64::INFINITY, f64::min);
        candidates
            .iter()
            .filter(|p| constrained(p) <= best * (1.0 + Self::FALLBACK_TOLERANCE))
            .min_by(|a, b| (a.cost_usd() * a.time_s()).total_cmp(&(b.cost_usd() * b.time_s())))
            .copied()
    }

    /// `select_best_allocation(b, P, e)`: the best candidate for
    /// `remaining_epochs` more epochs under the remaining budget or QoS
    /// slack. Falls back to [`Self::fallback`] when nothing fits.
    /// Steepness of the soft constraint penalty in [`Self::select_best`].
    const OVERRUN_PENALTY: f64 = 12.0;

    fn select_best(&mut self, remaining_epochs: f64) -> Option<AllocPoint> {
        // Charged before the memo lookup: the modeled decision cost is
        // per candidate *requested*, so `sched_overhead_s` downstream is
        // byte-identical with and without the cache.
        self.evaluations.add(self.candidates.len() as u64);
        // Scalarized selection: minimize the predicted remaining value of
        // the *objective* metric, multiplied by a steep soft penalty on
        // the projected overrun of the *constrained* metric (measured
        // against the safety-margin-reduced remainder, so mild stretches
        // still land inside the true constraint). A hard feasibility cut
        // behaves pathologically at the boundary's cost cliffs, where a
        // few percent of one metric buy an order of magnitude of the
        // other; the soft penalty takes those trades exactly when they
        // are lopsided enough.
        type Metric = fn(&AllocPoint) -> f64;
        let (objective_of, constrained_of, remaining): (Metric, Metric, f64) = match self.objective
        {
            TrainingObjective::MinJctGivenBudget { budget } => {
                (|p| p.time_s(), |p| p.cost_usd(), budget - self.spent)
            }
            TrainingObjective::MinCostGivenQos { qos_s } => {
                (|p| p.cost_usd(), |p| p.time_s(), qos_s - self.elapsed)
            }
        };
        let r_eff = remaining * self.config.safety_margin;
        let key = (remaining_epochs.to_bits(), r_eff.to_bits());
        if let Some(&hit) = self.select_cache.get(&key) {
            return hit;
        }
        let result = if r_eff <= 0.0 {
            // Already past the constraint: limit the damage.
            Self::fallback(&self.candidates, constrained_of)
        } else {
            self.candidates
                .iter()
                .min_by(|a, b| {
                    let score = |p: &AllocPoint| {
                        let projected = remaining_epochs * constrained_of(p);
                        let overrun = ((projected - r_eff) / r_eff).max(0.0);
                        remaining_epochs * objective_of(p) * (1.0 + Self::OVERRUN_PENALTY * overrun)
                    };
                    score(a).total_cmp(&score(b))
                })
                .copied()
        };
        self.select_cache.insert(key, result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_ml::curve::{CurveParams, LossCurve};
    use ce_ml::model::ModelFamily;
    use ce_models::{Environment, Workload};
    use ce_pareto::ParetoProfiler;
    use ce_sim_core::rng::SimRng;

    fn profile(w: &Workload) -> Profile {
        let env = Environment::aws_default();
        ParetoProfiler::new(&env).profile_workload(w)
    }

    fn scheduler(
        p: &Profile,
        objective: TrainingObjective,
        config: SchedulerConfig,
    ) -> AdaptiveScheduler {
        let params = CurveParams::for_workload(ModelFamily::MobileNet, "Cifar10");
        AdaptiveScheduler::new(p, objective, 0.2, params.initial, config)
    }

    /// Drives a scheduler through a simulated run, returning (epochs,
    /// restarts).
    fn drive(mut sched: AdaptiveScheduler, seed: u64) -> (u32, u32) {
        let params = CurveParams::for_workload(ModelFamily::MobileNet, "Cifar10");
        let mut run = LossCurve::sample_optimal(&params, SimRng::new(seed));
        sched.initial_allocation(40.0);
        let mut epochs = 0;
        for _ in 0..200 {
            let loss = run.next_epoch();
            epochs += 1;
            // Nominal epoch cost/time from the current allocation's
            // profile point would require a lookup; a fixed nominal value
            // suffices to exercise the control logic.
            sched.on_epoch_end(loss, 0.3, 30.0);
            if loss <= 0.2 {
                break;
            }
        }
        (epochs, sched.stats().adjustments)
    }

    #[test]
    fn initial_allocation_respects_budget() {
        let w = Workload::mobilenet_cifar10();
        let p = profile(&w);
        let budget = 50.0;
        let mut s = scheduler(
            &p,
            TrainingObjective::MinJctGivenBudget { budget },
            SchedulerConfig::default(),
        );
        let alloc = s.initial_allocation(40.0);
        let point = p
            .boundary()
            .into_iter()
            .find(|q| q.alloc == alloc)
            .expect("allocation from boundary");
        assert!(40.0 * point.cost_usd() <= budget);
    }

    #[test]
    fn tighter_budget_selects_cheaper_allocation() {
        let w = Workload::mobilenet_cifar10();
        let p = profile(&w);
        let pick = |budget: f64| {
            let mut s = scheduler(
                &p,
                TrainingObjective::MinJctGivenBudget { budget },
                SchedulerConfig::default(),
            );
            let alloc = s.initial_allocation(40.0);
            p.boundary()
                .into_iter()
                .find(|q| q.alloc == alloc)
                .unwrap()
                .cost_usd()
        };
        assert!(pick(15.0) <= pick(60.0));
    }

    #[test]
    fn qos_objective_selects_fast_enough_allocation() {
        let w = Workload::mobilenet_cifar10();
        let p = profile(&w);
        let qos = 40.0 * 60.0; // generous deadline
        let mut s = scheduler(
            &p,
            TrainingObjective::MinCostGivenQos { qos_s: qos },
            SchedulerConfig::default(),
        );
        let alloc = s.initial_allocation(40.0);
        let point = p.boundary().into_iter().find(|q| q.alloc == alloc).unwrap();
        assert!(40.0 * point.time_s() <= qos);
    }

    #[test]
    fn drift_below_delta_keeps_allocation() {
        let w = Workload::mobilenet_cifar10();
        let p = profile(&w);
        let mut s = scheduler(
            &p,
            TrainingObjective::MinJctGivenBudget { budget: 100.0 },
            SchedulerConfig {
                delta: f64::INFINITY, // never adjust
                ..SchedulerConfig::default()
            },
        );
        s.initial_allocation(40.0);
        let params = CurveParams::for_workload(ModelFamily::MobileNet, "Cifar10");
        let mut run = LossCurve::sample_optimal(&params, SimRng::new(1));
        for _ in 0..30 {
            let d = s.on_epoch_end(run.next_epoch(), 0.3, 30.0);
            assert_eq!(d, Decision::Keep);
        }
        assert_eq!(s.stats().adjustments, 0);
    }

    #[test]
    fn smaller_delta_triggers_more_reselections() {
        // Fig. 21c: δ = 0.01 reacts to prediction wiggles far more often
        // than δ = 0.2.
        let w = Workload::mobilenet_cifar10();
        let p = profile(&w);
        let params = CurveParams::for_workload(ModelFamily::MobileNet, "Cifar10");
        let triggers = |delta: f64| {
            let mut total = 0;
            for seed in 0..8 {
                let mut s = scheduler(
                    &p,
                    TrainingObjective::MinJctGivenBudget { budget: 100.0 },
                    SchedulerConfig {
                        delta,
                        ..SchedulerConfig::default()
                    },
                );
                let mut run = LossCurve::sample_optimal(&params, SimRng::new(seed));
                s.initial_allocation(40.0);
                for _ in 0..60 {
                    let loss = run.next_epoch();
                    s.on_epoch_end(loss, 0.3, 30.0);
                    if loss <= 0.2 {
                        break;
                    }
                }
                total += s.stats().triggers;
            }
            total
        };
        let many = triggers(0.01);
        let few = triggers(0.2);
        assert!(many > few, "δ=0.01 gave {many} triggers, δ=0.2 gave {few}");
    }

    #[test]
    fn wo_pareto_evaluates_more_candidates() {
        let w = Workload::mobilenet_cifar10();
        let p = profile(&w);
        let evals = |use_pareto: bool| {
            let mut s = scheduler(
                &p,
                TrainingObjective::MinJctGivenBudget { budget: 100.0 },
                SchedulerConfig {
                    use_pareto,
                    ..SchedulerConfig::default()
                },
            );
            s.initial_allocation(40.0);
            s.stats().evaluations
        };
        assert!(
            evals(false) > 3 * evals(true),
            "full {} vs pareto {}",
            evals(false),
            evals(true)
        );
    }

    #[test]
    fn hopeless_budget_avoids_pathological_tail() {
        // With a budget no allocation can meet, the selection must not
        // take the boundary's slow tail (orders of magnitude slower for
        // a few percent of savings); it lands near the cost×time knee.
        let w = Workload::mobilenet_cifar10();
        let p = profile(&w);
        let mut s = scheduler(
            &p,
            TrainingObjective::MinJctGivenBudget { budget: 1e-6 },
            SchedulerConfig::default(),
        );
        let alloc = s.initial_allocation(40.0);
        let chosen = p.boundary().into_iter().find(|q| q.alloc == alloc).unwrap();
        let cheapest = p.cheapest().unwrap();
        // Far faster than the pathological cheap tail...
        assert!(chosen.time_s() < cheapest.time_s() * 0.5);
        // ...at a bounded damage product.
        let best_product = p
            .boundary()
            .into_iter()
            .map(|q| q.cost_usd() * q.time_s())
            .fold(f64::INFINITY, f64::min);
        assert!(chosen.cost_usd() * chosen.time_s() <= best_product * 1.6);
    }

    #[test]
    fn adjustment_uses_remaining_epochs_not_total() {
        // After most epochs are done, even a tight budget admits a fast
        // allocation because few epochs remain.
        let w = Workload::mobilenet_cifar10();
        let p = profile(&w);
        let mut s = scheduler(
            &p,
            TrainingObjective::MinJctGivenBudget { budget: 25.0 },
            SchedulerConfig {
                delta: 0.01,
                ..SchedulerConfig::default()
            },
        );
        let first = s.initial_allocation(60.0);
        let first_cost = p
            .boundary()
            .into_iter()
            .find(|q| q.alloc == first)
            .unwrap()
            .cost_usd();
        // Feed a fast-converging history: prediction falls sharply, so
        // the remaining budget buys a faster allocation.
        let params = CurveParams::for_workload(ModelFamily::MobileNet, "Cifar10");
        let mut switched_to_richer = false;
        let mut run = LossCurve::sample(&params, 1.0, SimRng::new(3));
        for _ in 0..25 {
            if let Decision::Switch { to } = s.on_epoch_end(run.next_epoch(), 0.05, 20.0) {
                let new_cost = p
                    .boundary()
                    .into_iter()
                    .find(|q| q.alloc == to)
                    .unwrap()
                    .cost_usd();
                if new_cost > first_cost {
                    switched_to_richer = true;
                }
            }
        }
        assert!(
            switched_to_richer,
            "scheduler never exploited the shrinking epoch estimate"
        );
    }

    #[test]
    fn select_memo_hits_still_charge_evaluations() {
        // Same selection key twice: the second call is a memo hit, must
        // return the same allocation, and must still count its candidate
        // evaluations (the modeled overhead may not shrink with caching).
        let w = Workload::mobilenet_cifar10();
        let p = profile(&w);
        let mut s = scheduler(
            &p,
            TrainingObjective::MinJctGivenBudget { budget: 100.0 },
            SchedulerConfig::default(),
        );
        let a = s.initial_allocation(40.0);
        let once = s.stats().evaluations;
        assert!(once > 0);
        let b = s.initial_allocation(40.0);
        assert_eq!(a, b);
        assert_eq!(s.stats().evaluations, 2 * once);
    }

    #[test]
    fn deterministic_under_same_inputs() {
        let w = Workload::mobilenet_cifar10();
        let p = profile(&w);
        let s = scheduler(
            &p,
            TrainingObjective::MinJctGivenBudget { budget: 100.0 },
            SchedulerConfig::default(),
        );
        assert_eq!(drive(s.clone(), 7), drive(s, 7));
    }
}
