//! Fleet-scale benchmark: times [`ce_cluster::ClusterSim`] across fleet
//! sizes, dispatch policies, chaos on/off, and both fleet engines, and
//! emits a machine-readable `BENCH_fleet.json`.
//!
//! The **heap** arms run the shipping configuration: indexed ready-set
//! dispatch plus the pruned (branch-and-bound) loss-curve sweep. The
//! **naive** arms reconstruct the pre-optimization implementation
//! faithfully: linear-scan dispatch ([`FleetEngine::Naive`]) plus the
//! exhaustive sweep ([`SweepMode::Exhaustive`]). Both pipelines are
//! bit-identical in outcome (differential- and property-tested; this
//! binary re-asserts report equality on matching configs), so the arms
//! measure the same simulation and differ only in wall-clock.
//!
//! A second suite (`--suite serve`) times [`ce_serve::ServeSim`] at
//! request scale — 10k/100k/1M requests through the event heap — and
//! emits `BENCH_serve.json` with the same 2x `--baseline` regression
//! gate on the 100k-request reference arm.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ce-bench                 # full matrix -> BENCH_fleet.json
//! cargo run --release -p ce-bench -- --quick      # skip the 10k arms (CI smoke)
//! cargo run --release -p ce-bench -- --out F      # write somewhere else
//! cargo run --release -p ce-bench -- --quick --baseline BENCH_fleet.json
//!     # additionally fail (exit 1) if the 2k-job heap benchmark regressed
//!     # more than 2x against the committed baseline
//! cargo run --release -p ce-bench -- --suite serve
//!     # serving suite: 10k/100k/1M requests -> BENCH_serve.json
//! cargo run --release -p ce-bench -- --suite serve --quick --baseline BENCH_serve.json
//!     # CI smoke: 10k/100k arms plus the 2x gate on serve/100000/target/adaptive
//! ```

use ce_chaos::FaultSchedule;
use ce_cluster::{policy_by_name, ClusterSim, ClusterSpec, FleetEngine, FleetSpec};
use ce_obs::Registry;
use ce_training::{set_sweep_mode, SweepMode};
use ce_workflow::RecoveryPolicy;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Arrival rate for every arm (jobs per minute).
const RATE_PER_MIN: f64 = 120.0;
/// Shared account concurrency quota.
const QUOTA: u32 = 400;
/// Per-job worker cap.
const JOB_CAP: u32 = 8;
/// Seed for every arm (outcomes are deterministic per seed).
const SEED: u64 = 42;
/// Chaos spec used by the `chaos` arms.
const CHAOS_SPEC: &str = "crash:0.05@0..inf;outage:s3@1800..3600";
/// The reference arm pair for the speedup figure and the CI threshold.
const REFERENCE: &str = "fleet/2000/fifo/clean";
/// A fresh run slower than `baseline * REGRESSION_FACTOR` fails `--baseline`.
const REGRESSION_FACTOR: f64 = 2.0;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ArmResult {
    /// `fleet/<jobs>/<policy>/<clean|chaos>/<engine>`.
    name: String,
    jobs: usize,
    policy: String,
    chaos: bool,
    /// `heap` (indexed dispatch + pruned sweep) or `naive` (linear-scan
    /// dispatch + exhaustive sweep: the faithful pre-optimization core).
    engine: String,
    wall_ms: f64,
    /// Jobs that reached their target loss.
    completed: usize,
    /// Total fleet spend in dollars (an outcome checksum: equal-config
    /// arms must agree exactly).
    fleet_dollars: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Speedup {
    reference: String,
    heap_wall_ms: f64,
    naive_wall_ms: f64,
    ratio: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    schema: String,
    rate_per_min: f64,
    quota: u32,
    job_cap: u32,
    seed: u64,
    chaos_spec: String,
    arms: Vec<ArmResult>,
    /// Heap-vs-naive wall-clock ratio on the reference arm pair.
    speedup_2k: Option<Speedup>,
}

fn run_arm(jobs: usize, policy: &str, chaos: bool, engine: FleetEngine) -> ArmResult {
    let sweep = match engine {
        FleetEngine::Heap => SweepMode::Pruned,
        FleetEngine::Naive => SweepMode::Exhaustive,
    };
    set_sweep_mode(sweep);
    let mut spec = ClusterSpec::new(FleetSpec::poisson(jobs, RATE_PER_MIN, SEED), QUOTA)
        .with_job_cap(JOB_CAP)
        .with_recovery(RecoveryPolicy::CheckpointResume)
        .with_checkpoint_every(5)
        .with_engine(engine);
    if chaos {
        spec = spec.with_chaos(FaultSchedule::parse(CHAOS_SPEC).expect("chaos spec parses"));
    }
    let registry = Registry::new();
    let sim =
        ClusterSim::new(spec, policy_by_name(policy).expect("known policy")).with_obs(&registry);
    let start = Instant::now();
    let report = sim.run();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    set_sweep_mode(SweepMode::Pruned);

    let engine_name = match engine {
        FleetEngine::Heap => "heap",
        FleetEngine::Naive => "naive",
    };
    let variant = if chaos { "chaos" } else { "clean" };
    let completed = report
        .jobs
        .iter()
        .filter(|j| j.status == ce_cluster::JobStatus::Completed)
        .count();
    let arm = ArmResult {
        name: format!("fleet/{jobs}/{policy}/{variant}/{engine_name}"),
        jobs,
        policy: policy.to_string(),
        chaos,
        engine: engine_name.to_string(),
        wall_ms,
        completed,
        fleet_dollars: report.fleet_dollars,
    };
    eprintln!(
        "{:<38} {:>9.1} ms  ({} completed, ${:.2})",
        arm.name, arm.wall_ms, arm.completed, arm.fleet_dollars
    );
    arm
}

/// Requests per second for every serving arm (diurnal base rate).
const SERVE_RPS: f64 = 200.0;
/// Latency SLO for the serving arms (milliseconds).
const SERVE_SLO_MS: f64 = 800.0;
/// The serving reference arm for the CI threshold.
const SERVE_REFERENCE: &str = "serve/100000/target/adaptive";

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeArmResult {
    /// `serve/<requests>/<autoscaler>/<keep-alive>`.
    name: String,
    requests: u64,
    autoscaler: String,
    keep_alive: String,
    wall_ms: f64,
    /// Simulated requests processed per wall-clock second.
    reqs_per_sec: f64,
    /// Outcome checksums: equal-config arms must agree exactly.
    completed: u64,
    violation_rate: f64,
    dollars: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct ServeBenchReport {
    schema: String,
    rps: f64,
    slo_ms: f64,
    seed: u64,
    arms: Vec<ServeArmResult>,
}

fn run_serve_arm(target_requests: u64, autoscaler: &str, keep_alive: &str) -> ServeArmResult {
    use ce_serve::{autoscaler_by_name, ArrivalModel, ServeSim, ServeSpec};
    // Open-loop rate is fixed; scale comes from the arrival window. One
    // day/night cycle per 500 s keeps the diurnal shape at every size.
    let duration_s = target_requests as f64 / SERVE_RPS;
    let spec = ServeSpec::new(
        ArrivalModel::Diurnal {
            base_rps: SERVE_RPS,
            amplitude: 0.8,
            period_s: 500.0,
        },
        duration_s,
        SEED,
    )
    .with_slo_ms(SERVE_SLO_MS);
    let sim = ServeSim::new(
        spec,
        autoscaler_by_name(autoscaler).expect("known autoscaler"),
        ce_faas::keep_alive_by_name(keep_alive).expect("known keep-alive"),
    );
    let start = Instant::now();
    let report = sim.run();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let arm = ServeArmResult {
        name: format!("serve/{target_requests}/{autoscaler}/{keep_alive}"),
        requests: report.requests,
        autoscaler: autoscaler.to_string(),
        keep_alive: keep_alive.to_string(),
        wall_ms,
        reqs_per_sec: report.requests as f64 / (wall_ms / 1e3).max(1e-9),
        completed: report.completed,
        violation_rate: report.violation_rate(),
        dollars: report.dollars,
    };
    eprintln!(
        "{:<38} {:>9.1} ms  ({:.0} req/s, {:.2}% viol, ${:.4})",
        arm.name,
        arm.wall_ms,
        arm.reqs_per_sec,
        arm.violation_rate * 100.0,
        arm.dollars
    );
    arm
}

fn run_serve_suite(quick: bool, out: &str, baseline: Option<&str>) {
    let scales: &[u64] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let pairs = [
        ("target", "adaptive"),
        ("fixed:64", "fixed:600"),
        ("prewarm", "histogram"),
    ];
    let mut arms = Vec::new();
    for &requests in scales {
        for (autoscaler, keep_alive) in pairs {
            arms.push(run_serve_arm(requests, autoscaler, keep_alive));
        }
    }
    let report = ServeBenchReport {
        schema: "ce-bench/serve/v1".to_string(),
        rps: SERVE_RPS,
        slo_ms: SERVE_SLO_MS,
        seed: SEED,
        arms,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(out, json + "\n").expect("write benchmark report");
    eprintln!("wrote {out}");

    if let Some(path) = baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let base: ServeBenchReport = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        let reference_ms = |r: &ServeBenchReport, which: &str| {
            r.arms
                .iter()
                .find(|a| a.name == SERVE_REFERENCE)
                .map(|a| a.wall_ms)
                .unwrap_or_else(|| panic!("{which} report lacks the {SERVE_REFERENCE} arm"))
        };
        let base_ms = reference_ms(&base, "baseline");
        let fresh_ms = reference_ms(&report, "fresh");
        eprintln!(
            "threshold check: fresh {fresh_ms:.1} ms vs baseline {base_ms:.1} ms \
             (limit {:.1} ms)",
            base_ms * REGRESSION_FACTOR
        );
        if fresh_ms > base_ms * REGRESSION_FACTOR {
            eprintln!(
                "REGRESSION: the {SERVE_REFERENCE} benchmark is more than \
                 {REGRESSION_FACTOR}x slower than the committed baseline"
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut suite = String::from("fleet");
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(args.next().expect("--out needs a path")),
            "--suite" => suite = args.next().expect("--suite needs fleet|serve"),
            "--baseline" => baseline = Some(args.next().expect("--baseline needs a path")),
            other => {
                eprintln!("unknown flag: {other} (expected --quick, --out, --suite, --baseline)");
                std::process::exit(2);
            }
        }
    }
    match suite.as_str() {
        "fleet" => {}
        "serve" => {
            let out = out.unwrap_or_else(|| "BENCH_serve.json".into());
            run_serve_suite(quick, &out, baseline.as_deref());
            return;
        }
        other => {
            eprintln!("unknown suite: {other} (expected fleet or serve)");
            std::process::exit(2);
        }
    }
    let out = out.unwrap_or_else(|| "BENCH_fleet.json".into());

    let sizes: &[usize] = if quick {
        &[500, 2000]
    } else {
        &[500, 2000, 10_000]
    };
    let policies = ["fifo", "edf", "cost-greedy"];

    let mut arms = Vec::new();
    // Heap arms: the full matrix.
    for &jobs in sizes {
        for policy in policies {
            for chaos in [false, true] {
                arms.push(run_arm(jobs, policy, chaos, FleetEngine::Heap));
            }
        }
    }
    // Naive (pre-optimization) baseline arms: fifo at the small and
    // reference sizes. The 10k naive arm is omitted — the quadratic scan
    // plus exhaustive sweep make it minutes of wall-clock for no extra
    // information.
    for &jobs in &[500usize, 2000] {
        for chaos in [false, true] {
            if quick && (jobs != 2000 || chaos) {
                continue; // CI smoke only needs the reference pair
            }
            arms.push(run_arm(jobs, "fifo", chaos, FleetEngine::Naive));
        }
    }

    // Differential re-assertion: equal-config arm pairs must agree on
    // outcomes exactly (the engines are bit-identical by contract).
    for naive in arms.iter().filter(|a| a.engine == "naive") {
        let twin = arms
            .iter()
            .find(|a| {
                a.engine == "heap"
                    && a.jobs == naive.jobs
                    && a.policy == naive.policy
                    && a.chaos == naive.chaos
            })
            .expect("every naive arm has a heap twin");
        assert_eq!(
            (naive.completed, naive.fleet_dollars.to_bits()),
            (twin.completed, twin.fleet_dollars.to_bits()),
            "engines diverged on {}",
            naive.name
        );
    }

    let find = |engine: &str| {
        arms.iter()
            .find(|a| a.name == format!("{REFERENCE}/{engine}"))
            .map(|a| a.wall_ms)
    };
    let speedup_2k = match (find("heap"), find("naive")) {
        (Some(heap_wall_ms), Some(naive_wall_ms)) => Some(Speedup {
            reference: REFERENCE.to_string(),
            heap_wall_ms,
            naive_wall_ms,
            ratio: naive_wall_ms / heap_wall_ms,
        }),
        _ => None,
    };
    if let Some(s) = &speedup_2k {
        eprintln!(
            "speedup at {}: {:.2}x (heap {:.1} ms vs naive {:.1} ms)",
            s.reference, s.ratio, s.heap_wall_ms, s.naive_wall_ms
        );
    }

    let report = BenchReport {
        schema: "ce-bench/fleet/v1".to_string(),
        rate_per_min: RATE_PER_MIN,
        quota: QUOTA,
        job_cap: JOB_CAP,
        seed: SEED,
        chaos_spec: CHAOS_SPEC.to_string(),
        arms,
        speedup_2k,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write benchmark report");
    eprintln!("wrote {out}");

    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let base: BenchReport = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        let base_ms = base
            .arms
            .iter()
            .find(|a| a.name == format!("{REFERENCE}/heap"))
            .map(|a| a.wall_ms)
            .expect("baseline lacks the reference heap arm");
        let fresh_ms = report
            .arms
            .iter()
            .find(|a| a.name == format!("{REFERENCE}/heap"))
            .map(|a| a.wall_ms)
            .expect("fresh report lacks the reference heap arm");
        eprintln!(
            "threshold check: fresh {fresh_ms:.1} ms vs baseline {base_ms:.1} ms \
             (limit {:.1} ms)",
            base_ms * REGRESSION_FACTOR
        );
        if fresh_ms > base_ms * REGRESSION_FACTOR {
            eprintln!(
                "REGRESSION: the {REFERENCE} benchmark is more than \
                 {REGRESSION_FACTOR}x slower than the committed baseline"
            );
            std::process::exit(1);
        }
    }
}
