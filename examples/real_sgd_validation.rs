//! Substrate honesty check, end to end: run *real* distributed SGD with
//! workers exchanging gradient bytes through the simulated object store,
//! then fit the observed losses with the same inverse-power family the
//! schedulers assume and compare synchronization patterns across storage
//! services.
//!
//! ```sh
//! cargo run --release --example real_sgd_validation
//! ```

use ce_scaling::ml::distributed::{BspCluster, SyncPattern};
use ce_scaling::ml::sgd::LinearLoss;
use ce_scaling::ml::synth::SynthDataset;
use ce_scaling::sim::rng::SimRng;
use ce_scaling::storage::{SimStore, StorageCatalog, StorageKind};
use ce_scaling::training::LossCurveFitter;

fn main() {
    let catalog = StorageCatalog::aws_default();
    let data = SynthDataset::generate(4000, 16, 0.05, &mut SimRng::new(7));
    let n = 8;
    println!(
        "distributed logistic regression: {} instances, {} workers\n",
        data.len(),
        n
    );

    // Train the same job through two storage services.
    for (kind, pattern) in [
        (StorageKind::S3, SyncPattern::Stateless),
        (StorageKind::VmPs, SyncPattern::ParameterServer),
    ] {
        let store = SimStore::new(catalog.get(kind).unwrap().clone());
        let mut cluster = BspCluster::new(
            data.clone(),
            n,
            LinearLoss::Logistic,
            0.15,
            0.9,
            64,
            store,
            pattern,
        );
        let mut rng = SimRng::new(42);
        let mut losses = Vec::new();
        let mut sync_s = 0.0;
        for _ in 0..20 {
            let epoch = cluster.epoch(8, &mut rng);
            losses.push(epoch.loss);
            sync_s += epoch.sync_time_s;
        }
        cluster.assert_consistent();
        let stats = cluster.store().stats();
        println!("{kind}:");
        println!(
            "  final loss {:.4}; simulated sync time {:.1}s; {} puts, {} gets, ${:.6} in requests",
            losses.last().unwrap(),
            sync_s,
            stats.puts,
            stats.gets,
            stats.request_dollars
        );

        // Fit the observed losses with the scheduler's curve family.
        let initial = std::f64::consts::LN_2; // zero-weight log-loss
        let fit = LossCurveFitter::new(initial)
            .fit(&losses)
            .expect("enough history");
        let mean_rel_err: f64 = losses
            .iter()
            .enumerate()
            .map(|(e, &l)| ((fit.loss_at((e + 1) as f64) - l) / l).abs())
            .sum::<f64>()
            / losses.len() as f64;
        println!(
            "  inverse-power fit: floor {:.4}, rate {:.3}; mean residual {:.1}%\n",
            fit.floor,
            fit.rate,
            mean_rel_err * 100.0
        );
    }
    println!(
        "Identical trajectories, different bills and sync times — the\n\
         gradients really crossed the store, following Eq. 3's (3n−2) vs\n\
         (2n−2) transfer patterns (run the ce-ml distributed tests for the\n\
         operation-count proofs)."
    );
}
