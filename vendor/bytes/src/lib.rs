//! Minimal in-tree replacement for the `bytes` crate.
//!
//! [`Bytes`] is an immutable, cheaply cloneable byte buffer backed by
//! `Arc<[u8]>` — the same sharing semantics the real crate provides for the
//! usage in this workspace (store blobs that are cloned between the object
//! store and its callers without copying).

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(data: [u8; N]) -> Self {
        Bytes::copy_from_slice(&data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 4);
        assert_eq!(b.chunks_exact(2).count(), 2);
    }
}
