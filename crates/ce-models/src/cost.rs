//! Epoch monetary-cost model (Eq. 4 and Eq. 5).
//!
//! ```text
//! c'(θ) = c^f(θ) + c^s(θ)
//! c^f(θ) = n · p_ivk  +  n · t'(θ) · p_f(m)
//! c^s(θ) = k · (10n + 2) · p_s            (request-billed services)
//!        = (t'(θ)/60 + 1) · p_s           (runtime-billed services)
//! ```
//!
//! Functions are invoked once per epoch wave and billed for the whole
//! epoch at the memory-scaled GB-second rate; storage is billed per
//! request (S3/DynamoDB) or per attached runtime (ElastiCache/VM-PS), as
//! in Eq. 5.

use crate::allocation::Allocation;
use crate::environment::Environment;
use crate::time::{EpochTimeModel, TimeBreakdown};
use crate::workload::Workload;
use ce_storage::{sync, StorageKind};
use serde::{Deserialize, Serialize};

/// Typed cost-model failure: the allocation references a storage service
/// that is not in the environment's catalog.
///
/// Returned (never panicked) so a malformed allocation cannot crash a
/// profiling sweep or an allocation-evaluation loop mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownStorage {
    /// The storage service the allocation asked for.
    pub storage: StorageKind,
}

impl std::fmt::Display for UnknownStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "storage {} not in environment catalog", self.storage)
    }
}

impl std::error::Error for UnknownStorage {}

/// Components of one epoch's monetary cost, in dollars.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Invocation fees: `n · p_ivk`.
    pub invocation: f64,
    /// GB-second compute: `n · t'(θ) · p_f(m)`.
    pub compute: f64,
    /// Storage bill, split by pricing class (the patterned bar segment of
    /// Fig. 13/17/18).
    pub storage_requests: f64,
    /// Runtime-billed storage share.
    pub storage_runtime: f64,
}

impl CostBreakdown {
    /// Total epoch cost `c'(θ)`.
    pub fn total(&self) -> f64 {
        self.invocation + self.compute + self.storage_requests + self.storage_runtime
    }

    /// Total storage dollars (both pricing classes).
    pub fn storage(&self) -> f64 {
        self.storage_requests + self.storage_runtime
    }

    /// Fraction of the bill that is storage.
    pub fn storage_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.storage() / t
        }
    }
}

/// The analytical epoch-cost model.
#[derive(Debug, Clone)]
pub struct CostModel<'e> {
    env: &'e Environment,
}

impl<'e> CostModel<'e> {
    /// Builds the model over an environment.
    pub fn new(env: &'e Environment) -> Self {
        CostModel { env }
    }

    /// Predicts one epoch's cost under `alloc`, given that epoch's
    /// (predicted or measured) time breakdown.
    ///
    /// # Errors
    /// Returns [`UnknownStorage`] when the allocation's storage service is
    /// absent from the environment catalog.
    pub fn epoch_cost(
        &self,
        w: &Workload,
        alloc: &Allocation,
        time: &TimeBreakdown,
    ) -> Result<CostBreakdown, UnknownStorage> {
        let spec = self.env.storage.get(alloc.storage).ok_or(UnknownStorage {
            storage: alloc.storage,
        })?;
        let k = w.dataset.iterations_per_epoch(alloc.n, w.batch);
        let epoch_s = time.total();
        let bill = sync::epoch_bill(spec, alloc.n, w.model.model_mb, k, epoch_s);
        Ok(CostBreakdown {
            invocation: self.env.pricing.invocation_cost(alloc.n),
            compute: self
                .env
                .pricing
                .compute_cost(alloc.n, alloc.memory_mb, epoch_s),
            storage_requests: bill.request_dollars,
            storage_runtime: bill.runtime_dollars,
        })
    }

    /// Convenience: predicts time then cost in one call.
    ///
    /// # Errors
    /// Returns [`UnknownStorage`] when the allocation's storage service is
    /// absent from the environment catalog.
    pub fn epoch_estimate(
        &self,
        w: &Workload,
        alloc: &Allocation,
    ) -> Result<(TimeBreakdown, CostBreakdown), UnknownStorage> {
        let time = EpochTimeModel::new(self.env).epoch_time(w, alloc);
        let cost = self.epoch_cost(w, alloc, &time)?;
        Ok((time, cost))
    }

    /// Predicted total cost of `epochs` epochs.
    ///
    /// # Errors
    /// Returns [`UnknownStorage`] when the allocation's storage service is
    /// absent from the environment catalog.
    pub fn training_cost(
        &self,
        w: &Workload,
        alloc: &Allocation,
        epochs: u32,
    ) -> Result<f64, UnknownStorage> {
        let (_, cost) = self.epoch_estimate(w, alloc)?;
        Ok(f64::from(epochs) * cost.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_ml::{DatasetSpec, ModelSpec};
    use ce_storage::StorageKind;

    fn env() -> Environment {
        Environment::aws_default()
    }

    fn estimate(w: &Workload, alloc: &Allocation) -> (TimeBreakdown, CostBreakdown) {
        let env = env();
        CostModel::new(&env)
            .epoch_estimate(w, alloc)
            .expect("catalog storage")
    }

    #[test]
    fn compute_cost_matches_gb_seconds() {
        let env = env();
        let w = Workload::lr_higgs();
        let alloc = Allocation::new(10, 1769, StorageKind::S3);
        let (t, c) = CostModel::new(&env)
            .epoch_estimate(&w, &alloc)
            .expect("catalog");
        let expect = 10.0 * (1769.0 / 1024.0) * 1.66667e-5 * t.total();
        assert!((c.compute - expect).abs() < 1e-12);
    }

    #[test]
    fn invocation_cost_counts_workers() {
        let w = Workload::lr_higgs();
        let (_, c10) = estimate(&w, &Allocation::new(10, 1769, StorageKind::S3));
        let (_, c50) = estimate(&w, &Allocation::new(50, 1769, StorageKind::S3));
        assert!((c50.invocation - 5.0 * c10.invocation).abs() < 1e-15);
    }

    #[test]
    fn s3_bills_requests_not_runtime() {
        let w = Workload::lr_higgs();
        let (_, c) = estimate(&w, &Allocation::new(10, 1769, StorageKind::S3));
        assert!(c.storage_requests > 0.0);
        assert_eq!(c.storage_runtime, 0.0);
    }

    #[test]
    fn vmps_bills_runtime_not_requests() {
        let w = Workload::lr_higgs();
        let (_, c) = estimate(&w, &Allocation::new(10, 1769, StorageKind::VmPs));
        assert_eq!(c.storage_requests, 0.0);
        assert!(c.storage_runtime > 0.0);
    }

    #[test]
    fn more_memory_costs_more_per_second_but_may_run_shorter() {
        let w = Workload::mobilenet_cifar10();
        let (t1, c1) = estimate(&w, &Allocation::new(10, 1769, StorageKind::S3));
        let (t2, c2) = estimate(&w, &Allocation::new(10, 3538, StorageKind::S3));
        assert!(t2.total() < t1.total(), "more memory must be faster");
        // Cost does not double even though memory doubled, because the
        // epoch got shorter.
        assert!(c2.total() < 2.0 * c1.total());
    }

    #[test]
    fn breakdown_total_is_sum() {
        let c = CostBreakdown {
            invocation: 1.0,
            compute: 2.0,
            storage_requests: 3.0,
            storage_runtime: 4.0,
        };
        assert_eq!(c.total(), 10.0);
        assert_eq!(c.storage(), 7.0);
        assert!((c.storage_fraction() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn training_cost_scales_linearly() {
        let env = env();
        let model = CostModel::new(&env);
        let w = Workload::lr_higgs();
        let alloc = Allocation::new(10, 1769, StorageKind::S3);
        let one = model.training_cost(&w, &alloc, 1).expect("catalog");
        let five = model.training_cost(&w, &alloc, 5).expect("catalog");
        assert!((five - 5.0 * one).abs() < 1e-12);
    }

    #[test]
    fn table2_shape_small_model_few_workers_dynamodb_wins() {
        // Table II, 10 functions, LR: DynamoDB is both faster and cheaper
        // than S3 (JCT 0.83, cost 0.95).
        let w = Workload::lr_higgs();
        let (t_s3, c_s3) = estimate(&w, &Allocation::new(10, 1769, StorageKind::S3));
        let (t_ddb, c_ddb) = estimate(&w, &Allocation::new(10, 1769, StorageKind::DynamoDb));
        assert!(t_ddb.total() < t_s3.total(), "DynamoDB should be faster");
        assert!(
            c_ddb.total() < c_s3.total() * 1.1,
            "DynamoDB should be cost-competitive: {} vs {}",
            c_ddb.total(),
            c_s3.total()
        );
    }

    #[test]
    fn table2_shape_large_model_many_workers_vmps_wins_jct() {
        // Table II, 50 functions, MobileNet: VM-PS/ElastiCache beat S3 on
        // JCT.
        let w = Workload::mobilenet_cifar10();
        let (t_s3, _) = estimate(&w, &Allocation::new(50, 1769, StorageKind::S3));
        let (t_vm, _) = estimate(&w, &Allocation::new(50, 1769, StorageKind::VmPs));
        let (t_ec, _) = estimate(&w, &Allocation::new(50, 1769, StorageKind::ElastiCache));
        assert!(t_vm.total() < t_s3.total());
        assert!(t_ec.total() < t_s3.total());
    }

    #[test]
    fn workload_label_for_figures() {
        assert_eq!(
            Workload::new(ModelSpec::mobilenet(), DatasetSpec::cifar10()).label(),
            "MobileNet-Cifar10"
        );
    }
}
