//! Hyperparameter configurations and the quality surface SHA explores.
//!
//! A *trial* trains one hyperparameter configuration. The tuner never sees
//! the quality surface directly — it only observes per-epoch losses — but
//! the substrate needs a ground truth mapping configuration → convergence
//! behaviour. We model quality as a smooth unimodal function of
//! log-learning-rate and momentum with a known optimum, plus per-trial
//! stochasticity supplied by the loss curve.

use ce_sim_core::rng::SimRng;
use serde::{Deserialize, Serialize};

/// One hyperparameter configuration (the knobs the paper's §II-A names).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperConfig {
    /// Learning rate (log-uniform over the space).
    pub learning_rate: f64,
    /// Momentum coefficient in `[0, 0.99]`.
    pub momentum: f64,
}

impl HyperConfig {
    /// Ground-truth quality of this configuration in `(0, 1]`: 1 is the
    /// optimum. Unimodal in log-learning-rate (optimum at `lr_opt`) and
    /// mildly increasing in momentum (optimum at 0.9).
    pub fn quality(&self, lr_opt: f64) -> f64 {
        let dlr = (self.learning_rate.ln() - lr_opt.ln()) / 3.0_f64.ln();
        let lr_term = (-0.5 * dlr * dlr).exp();
        let dm = (self.momentum - 0.9) / 0.6;
        let m_term = (-0.5 * dm * dm).exp();
        // Momentum matters less than learning rate.
        (lr_term * (0.7 + 0.3 * m_term)).clamp(1e-3, 1.0)
    }
}

/// The hyperparameter search space from which SHA samples trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperSpace {
    /// Learning-rate range (log-uniform sampling), inclusive bounds.
    pub lr_range: (f64, f64),
    /// The learning rate at which quality peaks (ground truth).
    pub lr_opt: f64,
    /// Momentum range (uniform sampling).
    pub momentum_range: (f64, f64),
}

impl Default for HyperSpace {
    fn default() -> Self {
        HyperSpace {
            lr_range: (1e-4, 1.0),
            lr_opt: 0.01,
            momentum_range: (0.0, 0.99),
        }
    }
}

impl HyperSpace {
    /// Samples one configuration.
    pub fn sample(&self, rng: &mut SimRng) -> HyperConfig {
        let (lo, hi) = self.lr_range;
        debug_assert!(lo > 0.0 && hi > lo);
        let log_lr = rng.uniform_range(lo.ln(), hi.ln());
        let momentum = rng.uniform_range(self.momentum_range.0, self.momentum_range.1);
        HyperConfig {
            learning_rate: log_lr.exp(),
            momentum,
        }
    }

    /// Samples `count` configurations (one SHA bracket's first stage).
    pub fn sample_many(&self, count: usize, rng: &mut SimRng) -> Vec<HyperConfig> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Ground-truth quality for a configuration in this space.
    pub fn quality(&self, config: &HyperConfig) -> f64 {
        config.quality(self.lr_opt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_has_best_quality() {
        let space = HyperSpace::default();
        let best = HyperConfig {
            learning_rate: space.lr_opt,
            momentum: 0.9,
        };
        let q_best = space.quality(&best);
        assert!(q_best > 0.99);
        for lr in [1e-4, 1e-3, 0.1, 1.0] {
            let q = space.quality(&HyperConfig {
                learning_rate: lr,
                momentum: 0.9,
            });
            assert!(q < q_best, "lr {lr} quality {q} >= {q_best}");
        }
    }

    #[test]
    fn quality_bounded() {
        let space = HyperSpace::default();
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            let c = space.sample(&mut rng);
            let q = space.quality(&c);
            assert!((0.0..=1.0).contains(&q), "quality {q}");
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let space = HyperSpace::default();
        let mut rng = SimRng::new(2);
        for _ in 0..1000 {
            let c = space.sample(&mut rng);
            assert!(c.learning_rate >= 1e-4 && c.learning_rate <= 1.0);
            assert!((0.0..=0.99).contains(&c.momentum));
        }
    }

    #[test]
    fn sampling_is_log_uniform_in_lr() {
        // Roughly a quarter of the samples should land per decade
        // (the range spans 4 decades).
        let space = HyperSpace::default();
        let mut rng = SimRng::new(3);
        let configs = space.sample_many(10_000, &mut rng);
        let below_1e3: f64 =
            configs.iter().filter(|c| c.learning_rate < 1e-3).count() as f64 / 10_000.0;
        assert!((below_1e3 - 0.25).abs() < 0.03, "fraction {below_1e3}");
    }

    #[test]
    fn momentum_secondary_to_learning_rate() {
        let space = HyperSpace::default();
        let good_lr_bad_m = HyperConfig {
            learning_rate: space.lr_opt,
            momentum: 0.0,
        };
        let bad_lr_good_m = HyperConfig {
            learning_rate: 1.0,
            momentum: 0.9,
        };
        assert!(space.quality(&good_lr_bad_m) > space.quality(&bad_lr_good_m));
    }

    #[test]
    fn deterministic_sampling() {
        let space = HyperSpace::default();
        let a = space.sample_many(10, &mut SimRng::new(7));
        let b = space.sample_many(10, &mut SimRng::new(7));
        assert_eq!(a, b);
    }
}
