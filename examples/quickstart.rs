//! Quickstart: profile a workload, inspect its Pareto boundary, and pick
//! an allocation under a constraint.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ce_scaling::prelude::*;

fn main() {
    // 1. Describe the job: logistic regression over the Higgs dataset
    //    (11 M instances × 28 features), batch size from Table IV.
    let model = ModelSpec::logistic_regression();
    let dataset = DatasetSpec::higgs();
    println!(
        "workload: {} over {} ({:.0} MB of training data)\n",
        model.name(),
        dataset.name,
        dataset.size_mb
    );

    // 2. Profile the allocation space: every (n functions, memory,
    //    storage service) combination gets a predicted epoch time and
    //    cost from the paper's analytical models (Eqs. 2–5).
    let env = Environment::aws_default();
    let profile = ParetoProfiler::new(&env).profile(&model, &dataset);
    println!(
        "profiled {} allocations; {} on the Pareto boundary ({} pruned)\n",
        profile.points().len(),
        profile.boundary().len(),
        profile.pruned_count()
    );

    // 3. Walk the boundary: the efficient frontier of epoch time vs cost.
    println!("Pareto boundary (fastest → cheapest):");
    for point in profile.boundary().iter().take(8) {
        println!(
            "  {:28} {:7.1} s/epoch  ${:.5}/epoch",
            point.alloc.to_string(),
            point.time_s(),
            point.cost_usd()
        );
    }
    println!("  ...\n");

    // 4. Pick allocations under constraints.
    let fast = profile
        .cheapest_within_jct(30.0)
        .expect("an allocation faster than 30 s/epoch exists");
    println!(
        "cheapest allocation with epochs under 30 s: {} (${:.5}/epoch)",
        fast.alloc,
        fast.cost_usd()
    );
    let frugal = profile
        .fastest_within_cost(0.03)
        .expect("an allocation under $0.03/epoch exists");
    println!(
        "fastest allocation under $0.03/epoch:      {} ({:.1} s/epoch)",
        frugal.alloc,
        frugal.time_s()
    );
}
