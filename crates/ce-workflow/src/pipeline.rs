//! The end-to-end serverless ML workflow of Fig. 1: hyperparameter
//! tuning finds the best configuration, then model training takes it to
//! the target loss — one budget (or deadline) across both phases.
//!
//! The split follows the workflow's economics: tuning is the exploration
//! tax, training the product. The default gives tuning a configurable
//! share of the constraint and hands everything left over (including
//! whatever tuning did not spend) to training.

use crate::metrics::{TrainingReport, TuningReport};
use crate::runner::{TrainingJob, TuningJob};
use crate::{Constraint, Method, WorkflowError};
use ce_ml::curve::CurveParams;
use ce_ml::LossCurve;
use ce_models::{Environment, Workload};
use ce_sim_core::rng::SimRng;
use ce_tuning::ShaSpec;
use serde::{Deserialize, Serialize};

/// A complete workflow: one bracket of tuning, then training the winner.
#[derive(Debug, Clone)]
pub struct PipelineJob {
    /// The workload (model × dataset).
    pub workload: Workload,
    /// The tuning bracket.
    pub sha: ShaSpec,
    /// The overall constraint across both phases.
    pub constraint: Constraint,
    /// Fraction of the constraint reserved for tuning (default 0.5).
    pub tuning_share: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// The environment.
    pub env: Environment,
}

/// The outcome of a full workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// The tuning phase.
    pub tuning: TuningReport,
    /// The training phase (run with the tuning winner's configuration).
    pub training: TrainingReport,
    /// Total JCT across both phases (they run sequentially).
    pub jct_s: f64,
    /// Total dollars across both phases.
    pub cost_usd: f64,
    /// Whether the overall constraint was violated.
    pub violated: bool,
}

impl PipelineJob {
    /// Creates a workflow with the default environment, seed, and a
    /// 50/50 constraint split.
    pub fn new(workload: Workload, sha: ShaSpec, constraint: Constraint) -> Self {
        PipelineJob {
            workload,
            sha,
            constraint,
            tuning_share: 0.5,
            seed: 42,
            env: Environment::aws_default(),
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the tuning share of the constraint.
    ///
    /// # Panics
    /// Panics unless `share` is in `(0, 1)`.
    pub fn with_tuning_share(mut self, share: f64) -> Self {
        assert!(share > 0.0 && share < 1.0, "share {share} out of (0, 1)");
        self.tuning_share = share;
        self
    }

    /// Runs both phases under `method`.
    ///
    /// The winner's hyperparameter quality carries into training: the
    /// training job's convergence realization is drawn at the winner's
    /// quality, so a sloppy tuning phase really does pay for itself with
    /// a slower (or unreachable) training target.
    pub fn run(&self, method: Method) -> Result<PipelineReport, WorkflowError> {
        let (tuning_constraint, rest) = split(self.constraint, self.tuning_share);
        let tuning = TuningJob::new(self.workload.clone(), self.sha, tuning_constraint)
            .with_seed(self.seed)
            .run(method)?;

        // Everything unspent rolls over to training.
        let training_constraint = match (self.constraint, rest) {
            (Constraint::Budget(total), Constraint::Budget(_)) => {
                Constraint::Budget((total - tuning.cost_usd).max(0.0))
            }
            (Constraint::Deadline(total), Constraint::Deadline(_)) => {
                Constraint::Deadline((total - tuning.jct_s).max(0.0))
            }
            _ => unreachable!("split preserves the constraint kind"),
        };

        let quality = TuningJob::new(self.workload.clone(), self.sha, tuning_constraint)
            .hyper
            .quality(&tuning.best_config);
        let mut training_job = TrainingJob::new(self.workload.clone(), training_constraint)
            .with_seed(self.seed.wrapping_add(1));
        // The winner's plateau may sit above the Table IV optimum; aim
        // for what this configuration can actually reach.
        let params =
            CurveParams::for_workload(self.workload.model.family, &self.workload.dataset.name);
        let probe = LossCurve::sample(
            &params,
            quality.max(1e-3),
            SimRng::new(self.seed.wrapping_add(1))
                .derive("training")
                .derive("run"),
        );
        let reachable_floor = probe.realized_floor();
        if training_job.target_loss <= reachable_floor {
            training_job.target_loss = reachable_floor * 1.05;
        }
        let training = training_job.run(method)?;

        let jct_s = tuning.jct_s + training.jct_s;
        let cost_usd = tuning.cost_usd + training.cost_usd;
        let violated = match self.constraint {
            Constraint::Budget(b) => cost_usd > b,
            Constraint::Deadline(t) => jct_s > t,
        };
        Ok(PipelineReport {
            tuning,
            training,
            jct_s,
            cost_usd,
            violated,
        })
    }
}

/// Splits a constraint by share.
fn split(constraint: Constraint, share: f64) -> (Constraint, Constraint) {
    match constraint {
        Constraint::Budget(b) => (
            Constraint::Budget(b * share),
            Constraint::Budget(b * (1.0 - share)),
        ),
        Constraint::Deadline(t) => (
            Constraint::Deadline(t * share),
            Constraint::Deadline(t * (1.0 - share)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_pareto::ParetoProfiler;
    use ce_tuning::PartitionPlan;

    fn job() -> PipelineJob {
        let w = Workload::mobilenet_cifar10();
        let sha = ShaSpec::new(64, 2, 2);
        let env = Environment::aws_default();
        let profile = ParetoProfiler::new(&env).profile_workload(&w);
        // Budget: room for both phases.
        let tuning_floor = PartitionPlan::uniform(*profile.cheapest().unwrap(), sha).cost();
        let boundary = profile.boundary();
        let mid = boundary[boundary.len() / 2];
        let budget = tuning_floor * 2.0 + mid.cost_usd() * 42.0 * 2.0;
        let share = (tuning_floor * 2.0 / budget).clamp(0.1, 0.9);
        PipelineJob::new(w, sha, Constraint::Budget(budget)).with_tuning_share(share)
    }

    #[test]
    fn full_workflow_completes_within_budget() {
        let p = job();
        let r = p.run(Method::CeScaling).unwrap();
        assert!(
            !r.violated,
            "cost {:.2} under {:?}",
            r.cost_usd, p.constraint
        );
        assert!((r.jct_s - (r.tuning.jct_s + r.training.jct_s)).abs() < 1e-9);
        assert!((r.cost_usd - (r.tuning.cost_usd + r.training.cost_usd)).abs() < 1e-9);
        assert!(r.training.epochs > 0);
    }

    #[test]
    fn unspent_tuning_budget_rolls_over() {
        // The training constraint equals total − actual tuning spend, so
        // training may spend more than (1 − share) × total.
        let p = job();
        let r = p.run(Method::CeScaling).unwrap();
        if let Constraint::Budget(total) = p.constraint {
            assert!(r.training.cost_usd <= total - r.tuning.cost_usd + 1e-9);
        }
    }

    #[test]
    fn pipeline_deterministic_per_seed() {
        let p = job().with_seed(9);
        let a = p.run(Method::CeScaling).unwrap();
        let b = p.run(Method::CeScaling).unwrap();
        assert_eq!(a.cost_usd, b.cost_usd);
        assert_eq!(a.jct_s, b.jct_s);
    }

    #[test]
    fn ce_pipeline_beats_lambdaml_pipeline() {
        let p = job();
        let ce = p.run(Method::CeScaling).unwrap();
        let lml = p.run(Method::LambdaMl).unwrap();
        assert!(
            ce.jct_s <= lml.jct_s * 1.05,
            "CE {:.0}s vs LambdaML {:.0}s",
            ce.jct_s,
            lml.jct_s
        );
    }

    #[test]
    #[should_panic(expected = "out of (0, 1)")]
    fn share_bounds_checked() {
        let _ = job().with_tuning_share(1.5);
    }
}
