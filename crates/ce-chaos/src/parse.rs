//! Parser for the `--chaos` spec grammar (see the crate docs for the full
//! grammar table). Every error carries the offending clause so CLI users get
//! actionable messages.

use crate::fault::{BurstSpec, FaultKind, FaultWindow};
use crate::schedule::FaultSchedule;
use ce_storage::StorageKind;
use std::fmt;

/// A malformed `--chaos` spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSpecError {
    pub message: String,
}

impl fmt::Display for ChaosSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid chaos spec: {}", self.message)
    }
}

impl std::error::Error for ChaosSpecError {}

fn err<T>(message: impl Into<String>) -> Result<T, ChaosSpecError> {
    Err(ChaosSpecError {
        message: message.into(),
    })
}

/// Parses a `;`-separated list of window (`fault@start..end`) and burst
/// (`fault~per_hour/hxduration`) clauses. An empty spec is the empty
/// (zero-fault) schedule.
pub fn parse(spec: &str) -> Result<FaultSchedule, ChaosSpecError> {
    let mut schedule = FaultSchedule::none();
    for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
        if let Some((head, range)) = clause.split_once('@') {
            let fault = parse_fault(head.trim(), clause)?;
            let (start_s, end_s) = parse_range(range.trim(), clause)?;
            schedule.windows.push(FaultWindow {
                start_s,
                end_s,
                fault,
            });
        } else if let Some((head, tail)) = clause.split_once('~') {
            let fault = parse_fault(head.trim(), clause)?;
            let (per_hour, duration_s) = parse_burst(tail.trim(), clause)?;
            schedule.bursts.push(BurstSpec {
                fault,
                per_hour,
                duration_s,
            });
        } else {
            return err(format!(
                "clause `{clause}` has neither a window (`@start..end`) nor \
                 a burst (`~per_hour/hxduration`)"
            ));
        }
    }
    Ok(schedule)
}

fn parse_fault(head: &str, clause: &str) -> Result<FaultKind, ChaosSpecError> {
    let mut parts = head.split(':');
    let kind = parts.next().unwrap_or_default();
    let fault = match kind {
        "crash" => FaultKind::WorkerCrash {
            rate: parse_probability(parts.next(), "crash rate", clause)?,
        },
        "wave" => FaultKind::WaveKill {
            fraction: parse_probability(parts.next(), "wave fraction", clause)?,
        },
        "throttle" => FaultKind::ThrottleStorm {
            rate: parse_probability(parts.next(), "throttle rate", clause)?,
        },
        "coldspike" => FaultKind::ColdStartSpike {
            factor: parse_factor(parts.next(), "coldspike factor", clause)?,
        },
        "outage" => FaultKind::StorageOutage {
            service: parse_service(parts.next(), clause)?,
        },
        "degrade" => FaultKind::StorageDegrade {
            service: parse_service(parts.next(), clause)?,
            factor: parse_factor(parts.next(), "degrade factor", clause)?,
        },
        other => {
            return err(format!(
                "unknown fault `{other}` in `{clause}` (expected crash, wave, \
                 throttle, coldspike, outage, or degrade)"
            ))
        }
    };
    if let Some(extra) = parts.next() {
        return err(format!("trailing `:{extra}` in `{clause}`"));
    }
    Ok(fault)
}

fn parse_probability(token: Option<&str>, what: &str, clause: &str) -> Result<f64, ChaosSpecError> {
    let token = match token {
        Some(t) if !t.is_empty() => t,
        _ => return err(format!("missing {what} in `{clause}`")),
    };
    match token.parse::<f64>() {
        Ok(p) if (0.0..=1.0).contains(&p) => Ok(p),
        _ => err(format!("{what} `{token}` in `{clause}` must be in [0, 1]")),
    }
}

/// Factors are written `xN` (e.g. `x4`); the leading `x` is optional.
fn parse_factor(token: Option<&str>, what: &str, clause: &str) -> Result<f64, ChaosSpecError> {
    let token = match token {
        Some(t) if !t.is_empty() => t,
        _ => return err(format!("missing {what} in `{clause}`")),
    };
    let digits = token.strip_prefix('x').unwrap_or(token);
    match digits.parse::<f64>() {
        Ok(f) if f >= 1.0 && f.is_finite() => Ok(f),
        _ => err(format!("{what} `{token}` in `{clause}` must be >= 1")),
    }
}

fn parse_service(token: Option<&str>, clause: &str) -> Result<StorageKind, ChaosSpecError> {
    let token = match token {
        Some(t) if !t.is_empty() => t,
        _ => return err(format!("missing storage service in `{clause}`")),
    };
    match token.to_ascii_lowercase().as_str() {
        "s3" => Ok(StorageKind::S3),
        "dynamodb" | "dynamo" => Ok(StorageKind::DynamoDb),
        "elasticache" | "cache" | "redis" => Ok(StorageKind::ElastiCache),
        "vmps" | "vm-ps" => Ok(StorageKind::VmPs),
        other => err(format!(
            "unknown storage service `{other}` in `{clause}` (expected s3, \
             dynamodb, elasticache, or vmps)"
        )),
    }
}

fn parse_range(range: &str, clause: &str) -> Result<(f64, f64), ChaosSpecError> {
    let Some((start, end)) = range.split_once("..") else {
        return err(format!(
            "window `{range}` in `{clause}` must be `start..end`"
        ));
    };
    let start_s = match start.trim().parse::<f64>() {
        Ok(s) if s >= 0.0 && s.is_finite() => s,
        _ => return err(format!("bad window start `{start}` in `{clause}`")),
    };
    let end = end.trim();
    let end_s = if end.eq_ignore_ascii_case("inf") {
        f64::INFINITY
    } else {
        match end.parse::<f64>() {
            Ok(e) if e.is_finite() => e,
            _ => return err(format!("bad window end `{end}` in `{clause}`")),
        }
    };
    if end_s <= start_s {
        return err(format!("empty window `{range}` in `{clause}`"));
    }
    Ok((start_s, end_s))
}

/// Burst tail: `<per_hour>/hx<duration_s>`, e.g. `2/hx60`.
fn parse_burst(tail: &str, clause: &str) -> Result<(f64, f64), ChaosSpecError> {
    let Some((rate, dur)) = tail.split_once("/hx") else {
        return err(format!(
            "burst `{tail}` in `{clause}` must be `<per-hour>/hx<duration-s>`"
        ));
    };
    let per_hour = match rate.trim().parse::<f64>() {
        Ok(r) if r >= 0.0 && r.is_finite() => r,
        _ => return err(format!("bad burst rate `{rate}` in `{clause}`")),
    };
    let duration_s = match dur.trim().parse::<f64>() {
        Ok(d) if d > 0.0 && d.is_finite() => d,
        _ => return err(format!("bad burst duration `{dur}` in `{clause}`")),
    };
    Ok((per_hour, duration_s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_clause_kind() {
        let s = FaultSchedule::parse(
            "crash:0.2@0..inf; wave:0.5@300..360; outage:s3@600..1800; \
             degrade:elasticache:x4@0..900; throttle:0.3@0..inf; \
             coldspike:x5@0..120; throttle:0.8~2/hx60",
        )
        .unwrap();
        assert_eq!(s.windows.len(), 6);
        assert_eq!(s.bursts.len(), 1);
        assert_eq!(s.windows[0].fault, FaultKind::WorkerCrash { rate: 0.2 });
        assert!(s.windows[0].end_s.is_infinite());
        assert_eq!(
            s.bursts[0],
            BurstSpec {
                fault: FaultKind::ThrottleStorm { rate: 0.8 },
                per_hour: 2.0,
                duration_s: 60.0,
            }
        );
    }

    #[test]
    fn empty_spec_is_the_empty_schedule() {
        assert!(FaultSchedule::parse("").unwrap().is_empty());
        assert!(FaultSchedule::parse(" ; ").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_clauses() {
        for bad in [
            "crash",
            "crash:1.5@0..10",
            "crash:0.1@10..10",
            "crash:0.1@10..5",
            "crash:0.1@-5..10",
            "meteor:0.1@0..10",
            "outage:floppy@0..10",
            "degrade:s3@0..10",
            "coldspike:x0.5@0..10",
            "throttle:0.5~2perh",
            "crash:0.1:extra@0..10",
        ] {
            assert!(
                FaultSchedule::parse(bad).is_err(),
                "`{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn malformed_specs_yield_typed_errors_not_panics() {
        // Every malformed clause must come back as a ChaosSpecError whose
        // message names the offending clause — never a panic, never a
        // silently-dropped clause.
        for bad in [
            "crash:0.1@1800..600",  // window runs backwards
            "meteor:0.1@0..10",     // unknown fault name
            "outage:floppy@0..10",  // unknown service name
            "crash:-0.2@0..10",     // negative rate
            "wave:-1@0..10",        // negative fraction
            "throttle:0.5~-2/hx60", // negative burst rate
            ":",                    // empty head, no window/burst
            "@0..10",               // empty fault head
            "~2/hx60",              // burst with empty head
            "crash:0.1@..10",       // missing window start
            "crash:0.1@0..",        // missing window end
        ] {
            let e = FaultSchedule::parse(bad).expect_err(bad);
            assert!(
                !e.message.is_empty() && e.to_string().starts_with("invalid chaos spec:"),
                "`{bad}` gave unhelpful error `{e}`"
            );
        }
    }

    #[test]
    fn display_round_trips_through_parse() {
        // Display emits the canonical grammar, so parse ∘ display is the
        // identity on everything parse accepts.
        for spec in [
            "crash:0.2@0..inf",
            "outage:s3@300..900",
            "degrade:elasticache:x4@0..900",
            "degrade:vmps:x2@60..120",
            "outage:dynamodb@10..20",
            "wave:0.5@300..360",
            "coldspike:x5@0..120",
            "throttle:0.8~2/hx60",
            "crash:0.05@0..inf;outage:s3@1800..3600;throttle:0.3~1.5/hx90",
            "",
        ] {
            let parsed = FaultSchedule::parse(spec).expect(spec);
            let rendered = parsed.to_string();
            let again = FaultSchedule::parse(&rendered)
                .unwrap_or_else(|e| panic!("rendering `{rendered}` of `{spec}` unparseable: {e}"));
            assert_eq!(parsed, again, "spec `{spec}` via `{rendered}`");
        }
        // Aliases normalize to canonical service tokens.
        let s =
            FaultSchedule::parse("outage:DYNAMO@0..1;outage:redis@1..2;outage:vm-ps@2..3").unwrap();
        assert_eq!(
            s.to_string(),
            "outage:dynamodb@0..1;outage:elasticache@1..2;outage:vmps@2..3"
        );
    }

    #[test]
    fn service_aliases_resolve() {
        let s =
            FaultSchedule::parse("outage:DYNAMO@0..1;outage:redis@0..1;outage:vm-ps@0..1").unwrap();
        assert_eq!(
            s.windows[0].fault,
            FaultKind::StorageOutage {
                service: StorageKind::DynamoDb
            }
        );
        assert_eq!(
            s.windows[1].fault,
            FaultKind::StorageOutage {
                service: StorageKind::ElastiCache
            }
        );
        assert_eq!(
            s.windows[2].fault,
            FaultKind::StorageOutage {
                service: StorageKind::VmPs
            }
        );
    }
}
