//! Property-based tests (proptest) over the core invariants.

use ce_scaling::ml::curve::CurveParams;
use ce_scaling::ml::{DatasetSpec, ModelFamily, ModelSpec};
use ce_scaling::models::{Allocation, CostModel, Environment, EpochTimeModel, Workload};
use ce_scaling::pareto::{dominates, AllocPoint, ParetoProfiler, Profile};
use ce_scaling::sim::rng::SimRng;
use ce_scaling::storage::StorageKind;
use ce_scaling::tuning::{GreedyPlanner, Objective, PartitionPlan, ShaSpec};
use proptest::prelude::*;

fn storage_strategy() -> impl Strategy<Value = StorageKind> {
    prop_oneof![
        Just(StorageKind::S3),
        Just(StorageKind::DynamoDb),
        Just(StorageKind::ElastiCache),
        Just(StorageKind::VmPs),
    ]
}

fn point(time: f64, cost: f64) -> AllocPoint {
    AllocPoint {
        alloc: Allocation::new(1, 512, StorageKind::S3),
        time: ce_scaling::models::TimeBreakdown {
            load_s: 0.0,
            compute_s: time,
            sync_s: 0.0,
        },
        cost: ce_scaling::models::CostBreakdown {
            invocation: 0.0,
            compute: cost,
            storage_requests: 0.0,
            storage_runtime: 0.0,
        },
    }
}

proptest! {
    /// The Pareto boundary is mutually non-dominated and weakly covers
    /// every pruned point, for arbitrary point clouds.
    #[test]
    fn pareto_boundary_invariants(
        coords in prop::collection::vec((0.1f64..1e4, 0.1f64..1e3), 1..60)
    ) {
        let points: Vec<AllocPoint> =
            coords.iter().map(|&(t, c)| point(t, c)).collect();
        let profile = Profile::from_points(points.clone());
        let boundary = profile.boundary();
        prop_assert!(!boundary.is_empty());
        for a in &boundary {
            for b in &boundary {
                prop_assert!(!dominates(
                    a.time_s(), a.cost_usd(), b.time_s(), b.cost_usd()
                ) || std::ptr::eq(*a, *b));
            }
        }
        for p in &points {
            let covered = boundary
                .iter()
                .any(|b| b.time_s() <= p.time_s() && b.cost_usd() <= p.cost_usd());
            prop_assert!(covered);
        }
    }

    /// Epoch time decreases (weakly) with more memory, at any worker
    /// count and storage; epoch cost is always positive.
    #[test]
    fn epoch_time_monotone_in_memory(
        n in 1u32..200,
        mem_step in 0usize..6,
        storage in storage_strategy(),
    ) {
        let env = Environment::aws_default();
        let w = Workload::new(ModelSpec::logistic_regression(), DatasetSpec::higgs());
        let ladder = [512u32, 1024, 1769, 3072, 5120, 8192, 10240];
        let m_lo = ladder[mem_step];
        let m_hi = ladder[mem_step + 1];
        let model = EpochTimeModel::new(&env);
        let t_lo = model.epoch_time(&w, &Allocation::new(n, m_lo, storage));
        let t_hi = model.epoch_time(&w, &Allocation::new(n, m_hi, storage));
        prop_assert!(t_hi.total() <= t_lo.total() + 1e-9);
        let cost = CostModel::new(&env).epoch_cost(&w, &Allocation::new(n, m_lo, storage), &t_lo);
        prop_assert!(cost.total() > 0.0);
    }

    /// Billed compute dollars equal n × memory-GB × seconds × rate for
    /// any inputs (conservation of billing).
    #[test]
    fn billing_conservation(
        n in 1u32..500,
        mem in 128u32..10240,
        secs in 0.0f64..1e5,
    ) {
        let pricing = ce_scaling::models::FunctionPricing::aws_default();
        let cost = pricing.compute_cost(n, mem, secs);
        let expect = f64::from(n) * f64::from(mem) / 1024.0 * secs * pricing.per_gb_second;
        prop_assert!((cost - expect).abs() < 1e-9 * expect.max(1.0));
    }

    /// SHA stage arithmetic: trial counts follow q/rf^i exactly and the
    /// final stage has `rf` trials.
    #[test]
    fn sha_stage_arithmetic(power in 1u32..14, rf in 2u32..4) {
        let initial = rf.pow(power);
        let sha = ShaSpec::new(initial, rf, 2);
        prop_assert_eq!(sha.num_stages(), power as usize);
        for s in 0..sha.num_stages() {
            prop_assert_eq!(sha.trials_in_stage(s), initial / rf.pow(s as u32));
        }
        prop_assert_eq!(sha.trials_in_stage(sha.num_stages() - 1), rf);
    }

    /// The greedy planner never exceeds the budget and never does worse
    /// than the optimal static plan, for any budget headroom.
    #[test]
    fn planner_dominates_static_under_any_budget(slack in 1.05f64..4.0, seed in 0u64..4) {
        let env = Environment::aws_default();
        let w = match seed % 2 {
            0 => Workload::lr_higgs(),
            _ => Workload::mobilenet_cifar10(),
        };
        let profile = ParetoProfiler::new(&env).profile_workload(&w);
        let sha = ShaSpec::new(64, 2, 2);
        let budget =
            PartitionPlan::uniform(*profile.cheapest().unwrap(), sha).cost() * slack;
        let planner = GreedyPlanner::new(&profile, sha, env.max_concurrency);
        let (plan, static_plan, _) = planner
            .plan(Objective::MinJctGivenBudget { budget, qos_s: None })
            .expect("feasible");
        prop_assert!(plan.cost() <= budget + 1e-9);
        prop_assert!(plan.jct(env.max_concurrency) <= static_plan.jct(env.max_concurrency) + 1e-9);
    }

    /// The convergence curve's epoch inversion round-trips for any
    /// parameters and reachable target.
    #[test]
    fn curve_inversion_roundtrip(
        initial in 0.5f64..5.0,
        floor_frac in 0.01f64..0.9,
        rate in 0.01f64..5.0,
        target_frac in 0.05f64..0.95,
    ) {
        let floor = initial * floor_frac;
        let params = CurveParams {
            initial,
            floor,
            rate,
            power: 1.0,
            obs_noise: 0.0,
            rate_var: 0.0,
        };
        let target = floor + (initial - floor) * target_frac;
        let e = params.mean_epochs_to(target).expect("reachable");
        prop_assert!((params.mean_loss_at(e) - target).abs() < 1e-6);
    }

    /// Deterministic streams: deriving the same label from the same seed
    /// always yields the same sequence; different labels diverge.
    #[test]
    fn rng_stream_determinism(seed in 0u64..u64::MAX, label in "[a-z]{1,12}") {
        let a: Vec<u64> = {
            let mut r = SimRng::new(seed).derive(&label);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::new(seed).derive(&label);
            (0..8).map(|_| r.next_u64()).collect()
        };
        prop_assert_eq!(&a, &b);
        let mut other = SimRng::new(seed).derive(&format!("{label}x"));
        let c: Vec<u64> = (0..8).map(|_| other.next_u64()).collect();
        prop_assert_ne!(a, c);
    }

    /// Storage request pricing is monotone in object size and never
    /// negative; runtime pricing is monotone in duration.
    #[test]
    fn storage_pricing_monotone(
        size_a in 0.001f64..500.0,
        size_b in 0.001f64..500.0,
        secs_a in 0.0f64..1e5,
        secs_b in 0.0f64..1e5,
        storage in storage_strategy(),
    ) {
        let env = Environment::aws_default();
        let spec = env.storage.get(storage).unwrap();
        let (lo, hi) = if size_a <= size_b { (size_a, size_b) } else { (size_b, size_a) };
        prop_assert!(spec.pricing.put_cost(lo) <= spec.pricing.put_cost(hi));
        prop_assert!(spec.pricing.get_cost(lo) <= spec.pricing.get_cost(hi));
        prop_assert!(spec.pricing.put_cost(lo) >= 0.0);
        let (t_lo, t_hi) = if secs_a <= secs_b { (secs_a, secs_b) } else { (secs_b, secs_a) };
        prop_assert!(spec.pricing.runtime_cost(t_lo) <= spec.pricing.runtime_cost(t_hi));
    }

    /// Sync transfer counts: VM-PS always needs at most as many
    /// transfers as stateless storage, and both grow linearly with n.
    #[test]
    fn sync_pattern_invariants(n in 1u32..1000) {
        let env = Environment::aws_default();
        let s3 = env.storage.get(StorageKind::S3).unwrap();
        let vm = env.storage.get(StorageKind::VmPs).unwrap();
        let stateless = ce_scaling::storage::sync::transfers_per_iteration(s3, n);
        let vmps = ce_scaling::storage::sync::transfers_per_iteration(vm, n);
        prop_assert!(vmps <= stateless);
        prop_assert_eq!(stateless, 3 * n - 2);
        if n >= 1 {
            prop_assert_eq!(vmps, 2 * n - 2);
        }
    }

    /// ModelSpec compute time is positive and monotone non-increasing in
    /// memory for every family.
    #[test]
    fn compute_time_positive_and_monotone(
        mem in 128u32..10000,
        family_idx in 0usize..5,
    ) {
        let zoo = ModelSpec::paper_zoo();
        let model = &zoo[family_idx];
        let t = model.compute_time_per_mb(mem);
        prop_assert!(t > 0.0);
        prop_assert!(model.compute_time_per_mb(mem + 240) <= t + 1e-12);
        let _ = ModelFamily::LogisticRegression; // exercised via the zoo
    }

    /// Instance-pool conservation: after any acquire/release sequence,
    /// warm + executing instances equal creations minus expiries, and
    /// warm hits never exceed invocations.
    #[test]
    fn instance_pool_conservation(
        ops in prop::collection::vec((1u32..20, 0u8..2, 1.0f64..100.0), 1..30)
    ) {
        use ce_scaling::faas::InstancePool;
        use ce_scaling::sim::time::SimTime;
        let mut pool = InstancePool::new();
        let mut now = 0.0f64;
        for (n, mem_pick, busy) in ops {
            let mem = [1024u32, 1769][mem_pick as usize];
            let (ids, cold) = pool.acquire(n, mem, SimTime::from_secs(now));
            prop_assert_eq!(ids.len() as u32, n);
            prop_assert!(cold <= n);
            now += busy;
            pool.release(&ids, busy, SimTime::from_secs(now));
        }
        let stats = pool.stats();
        prop_assert!(stats.warm_hits + stats.created == stats.invocations
            || stats.created >= 1);
        prop_assert_eq!(stats.warm_hits + stats.created, stats.invocations);
        prop_assert!(pool.len() as u64 <= stats.created);
    }

    /// ASP inflation is ≥ 1, monotone in n, and bounded.
    #[test]
    fn asp_inflation_bounds(n in 1u32..5000) {
        use ce_scaling::models::asp_epoch_inflation;
        let f = asp_epoch_inflation(n);
        prop_assert!((1.0..=1.35).contains(&f));
        prop_assert!(asp_epoch_inflation(n + 1) >= f);
    }

    /// TPE suggestions always stay inside the hyperparameter space,
    /// whatever loss values have been observed.
    #[test]
    fn tpe_suggestions_in_bounds(
        losses in prop::collection::vec(0.0f64..10.0, 0..40),
        seed in 0u64..1000,
    ) {
        use ce_scaling::ml::HyperSpace;
        use ce_scaling::tuning::TpeSampler;
        let space = HyperSpace::default();
        let mut sampler = TpeSampler::new(space.clone());
        let mut rng = SimRng::new(seed);
        for loss in losses {
            let c = sampler.suggest(&mut rng);
            prop_assert!(c.learning_rate >= space.lr_range.0);
            prop_assert!(c.learning_rate <= space.lr_range.1);
            prop_assert!(c.momentum >= space.momentum_range.0);
            prop_assert!(c.momentum <= space.momentum_range.1);
            sampler.observe(c, loss);
        }
    }

    /// Failure injection never reduces wall time, and scales billing with
    /// the wall.
    #[test]
    fn failure_injection_monotone(seed in 0u64..200, rate in 0.0f64..0.4) {
        use ce_scaling::faas::{ExecutionFidelity, FaasPlatform, PlatformConfig};
        let w = Workload::lr_higgs();
        let alloc = Allocation::new(20, 1769, StorageKind::S3);
        let run = |failure_rate: f64| {
            let mut p = FaasPlatform::with_config(
                Environment::aws_default(),
                PlatformConfig { failure_rate, ..PlatformConfig::default() },
                seed,
            );
            p.run_epoch(&w, &alloc, ExecutionFidelity::Fast)
        };
        let clean = run(0.0);
        let faulty = run(rate);
        prop_assert!(faulty.wall_s + 1e-9 >= clean.wall_s - clean.failure_s);
        prop_assert!(faulty.failure_s >= 0.0);
        if faulty.failures == 0 {
            prop_assert_eq!(faulty.failure_s, 0.0);
        }
    }

    /// Hyperband bracket ladders are well-formed for any R and η.
    #[test]
    fn hyperband_ladder_wellformed(power in 1u32..8, eta in 2u32..4) {
        use ce_scaling::tuning::HyperbandSpec;
        let r = eta.pow(power);
        let hb = HyperbandSpec::new(r, eta);
        let brackets = hb.brackets();
        prop_assert_eq!(brackets.len() as u32, hb.s_max() + 1);
        for b in &brackets {
            prop_assert!(b.initial_trials >= eta);
            prop_assert!(b.epochs_per_stage >= 1);
        }
        // Most exploratory first.
        prop_assert!(brackets[0].initial_trials >= brackets.last().unwrap().initial_trials);
    }
}
