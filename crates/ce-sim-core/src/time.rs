//! Simulated time.
//!
//! [`SimTime`] is a non-negative number of simulated seconds. It is a thin
//! `f64` newtype with a total order (NaN is rejected at construction), so it
//! can key the event queue directly.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in seconds since simulation start.
///
/// `SimTime` is totally ordered; constructing one from NaN panics. Negative
/// times are permitted transiently (e.g. when computing launch offsets for
/// the delayed-restart optimization) but the event queue rejects scheduling
/// in the past.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN.
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// Seconds since simulation start.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: never goes below zero.
    pub fn saturating_sub(self, other: SimTime) -> f64 {
        (self.0 - other.0).max(0.0)
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // NaN is rejected at construction, so partial_cmp always succeeds.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, secs: f64) -> SimTime {
        SimTime::from_secs(self.0 + secs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, secs: f64) {
        *self = *self + secs;
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, other: SimTime) -> f64 {
        self.0 - other.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(10.0) + 5.5;
        assert_eq!(t.as_secs(), 15.5);
        assert_eq!(t - SimTime::from_secs(10.0), 5.5);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = SimTime::from_secs(3.0);
        let b = SimTime::from_secs(5.0);
        assert_eq!(a.saturating_sub(b), 0.0);
        assert_eq!(b.saturating_sub(a), 2.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += 1.25;
        t += 0.75;
        assert_eq!(t.as_secs(), 2.0);
    }
}
