//! Derive macros for the vendored `serde` shim.
//!
//! Parses the struct/enum token stream by hand (the offline build has no
//! syn/quote) and emits `Serialize`/`Deserialize` impls targeting the
//! shim's `Value`-tree model. Supported shapes — the full set used by this
//! workspace:
//!
//! - named-field structs (with `#[serde(default)]` per field; `Option`
//!   fields tolerate missing keys)
//! - newtype and tuple structs (newtype is transparent, tuples are arrays)
//! - enums with unit / newtype / tuple / struct variants, externally
//!   tagged, honoring `#[serde(rename_all = "lowercase" | "snake_case" |
//!   "UPPERCASE")]`
//!
//! Generics are intentionally unsupported (unused in this workspace) and
//! rejected with a compile error.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Container) -> String) -> TokenStream {
    let container = match parse_container(input) {
        Ok(c) => c,
        Err(msg) => return compile_error(&msg),
    };
    let code = generate(&container);
    code.parse().unwrap_or_else(|e| {
        compile_error(&format!(
            "serde_derive generated invalid code for {}: {e}",
            container.name
        ))
    })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("literal")
}

// ---------------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------------

struct Container {
    name: String,
    rename_all: Option<String>,
    data: Data,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    has_default: bool,
    is_option: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// What a `#[serde(...)]` attribute contributed.
#[derive(Default)]
struct SerdeAttrs {
    has_default: bool,
    rename_all: Option<String>,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_container(input: TokenStream) -> Result<Container, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i)?;
    let name = expect_ident(&tokens, &mut i)?;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored) does not support generic type `{name}`"
        ));
    }

    let data = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g))
            }
            _ => Data::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g)?)
            }
            other => return Err(format!("expected enum body for `{name}`, got {other:?}")),
        },
        other => return Err(format!("expected `struct` or `enum`, got `{other}`")),
    };

    Ok(Container {
        name,
        rename_all: attrs.rename_all,
        data,
    })
}

/// Skips `#[...]` attribute groups, collecting serde-relevant contents.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            scan_serde_attr(g, &mut attrs);
            *i += 2;
        } else {
            break;
        }
    }
    attrs
}

/// Extracts `default` / `rename_all = "..."` from a `[serde(...)]` group.
fn scan_serde_attr(bracket: &Group, attrs: &mut SerdeAttrs) {
    let inner: Vec<TokenTree> = bracket.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            let mut j = 0;
            while j < args.len() {
                if let TokenTree::Ident(key) = &args[j] {
                    match key.to_string().as_str() {
                        "default" => attrs.has_default = true,
                        "rename_all" => {
                            if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                                (args.get(j + 1), args.get(j + 2))
                            {
                                if eq.as_char() == '=' {
                                    attrs.rename_all = Some(literal_string(lit));
                                    j += 2;
                                }
                            }
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
        }
        _ => {}
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected identifier, got {other:?}")),
    }
}

/// Strips the surrounding quotes from a string literal token.
fn literal_string(lit: &proc_macro::Literal) -> String {
    let repr = lit.to_string();
    repr.trim_matches('"').to_string()
}

fn parse_named_fields(brace: &Group) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = brace.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i)?;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        let is_option =
            matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "Option");
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name,
            has_default: attrs.has_default,
            is_option,
        });
    }
    Ok(fields)
}

/// Advances past a type, stopping after the comma that terminates it (or at
/// end of input). Tracks angle-bracket depth so commas inside `Vec<(A, B)>`
/// style generics do not split the field.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i64;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Number of fields in a tuple-struct/tuple-variant parenthesis group.
fn count_tuple_fields(paren: &Group) -> usize {
    let tokens: Vec<TokenTree> = paren.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i < tokens.len() {
            fields += 1;
            skip_type(&tokens, &mut i);
        }
    }
    fields
}

fn parse_variants(brace: &Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = brace.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i); // e.g. doc comments, `#[default]`
        let name = expect_ident(&tokens, &mut i)?;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                match count_tuple_fields(g) {
                    1 => VariantKind::Newtype,
                    n => VariantKind::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g)?)
            }
            _ => VariantKind::Unit,
        };
        // Skip the separating comma (and any explicit discriminant).
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Naming helpers
// ---------------------------------------------------------------------------

/// Applies a container-level `rename_all` rule to a field/variant name.
fn apply_rename(rule: Option<&str>, name: &str) -> String {
    match rule {
        Some("lowercase") => name.to_lowercase(),
        Some("UPPERCASE") => name.to_uppercase(),
        Some("snake_case") => {
            let mut out = String::new();
            for (idx, c) in name.chars().enumerate() {
                if c.is_uppercase() {
                    if idx > 0 {
                        out.push('_');
                    }
                    out.extend(c.to_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        _ => name.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.data {
        Data::NamedStruct(fields) => {
            let mut s = String::from("let mut __map = serde::value::Map::new();\n");
            for f in fields {
                let key = apply_rename(c.rename_all.as_deref(), &f.name);
                s.push_str(&format!(
                    "__map.insert({key:?}.to_string(), \
                     serde::ser::Serialize::serialize_value(&self.{field}));\n",
                    field = f.name
                ));
            }
            s.push_str("serde::value::Value::Object(__map)");
            s
        }
        Data::TupleStruct(1) => String::from("serde::ser::Serialize::serialize_value(&self.0)"),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::ser::Serialize::serialize_value(&self.{k})"))
                .collect();
            format!("serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Data::UnitStruct => String::from("serde::value::Value::Null"),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let tag = apply_rename(c.rename_all.as_deref(), &v.name);
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => serde::value::Value::String({tag:?}.to_string()),\n",
                        v = v.name
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{v}(__f0) => {{\n\
                         let mut __map = serde::value::Map::new();\n\
                         __map.insert({tag:?}.to_string(), \
                         serde::ser::Serialize::serialize_value(__f0));\n\
                         serde::value::Value::Object(__map)\n}}\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("serde::ser::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binders}) => {{\n\
                             let mut __map = serde::value::Map::new();\n\
                             __map.insert({tag:?}.to_string(), \
                             serde::value::Value::Array(vec![{items}]));\n\
                             serde::value::Value::Object(__map)\n}}\n",
                            v = v.name,
                            binders = binders.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner =
                            String::from("let mut __inner = serde::value::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__inner.insert({key:?}.to_string(), \
                                 serde::ser::Serialize::serialize_value({field}));\n",
                                key = f.name,
                                field = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binders} }} => {{\n\
                             {inner}\
                             let mut __map = serde::value::Map::new();\n\
                             __map.insert({tag:?}.to_string(), \
                             serde::value::Value::Object(__inner));\n\
                             serde::value::Value::Object(__map)\n}}\n",
                            v = v.name,
                            binders = binders.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl serde::ser::Serialize for {name} {{\n\
         fn serialize_value(&self) -> serde::value::Value {{\n{body}\n}}\n}}\n"
    )
}

/// The `match obj.get(key)` expression deserializing one named field.
fn field_getter(type_name: &str, accessor: &str, f: &Field) -> String {
    let missing = if f.has_default {
        "core::default::Default::default()".to_string()
    } else if f.is_option {
        "core::option::Option::None".to_string()
    } else {
        format!(
            "return Err(serde::de::Error::missing_field({type_name:?}, {field:?}))",
            field = f.name
        )
    };
    format!(
        "match {accessor}.get({field:?}) {{\n\
         Some(__v) => serde::de::Deserialize::deserialize_value(__v)?,\n\
         None => {missing},\n}}",
        field = f.name
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.data {
        Data::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{field}: {getter},\n",
                    field = f.name,
                    getter = field_getter(name, "__obj", f)
                ));
            }
            format!(
                "let __obj = __value.as_object().ok_or_else(|| \
                 serde::de::Error::expected(\"object for {name}\", __value))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Data::TupleStruct(1) => {
            format!("Ok({name}(serde::de::Deserialize::deserialize_value(__value)?))")
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::de::Deserialize::deserialize_value(&__arr[{k}])?"))
                .collect();
            format!(
                "let __arr = __value.as_array().ok_or_else(|| \
                 serde::de::Error::expected(\"array for {name}\", __value))?;\n\
                 if __arr.len() != {n} {{\n\
                 return Err(serde::de::Error::expected(\"{n}-element array for {name}\", __value));\n}}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Data::UnitStruct => format!("Ok({name})"),
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let tag = apply_rename(c.rename_all.as_deref(), &v.name);
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("{tag:?} => Ok({name}::{v}),\n", v = v.name))
                    }
                    VariantKind::Newtype => tagged_arms.push_str(&format!(
                        "{tag:?} => Ok({name}::{v}(\
                         serde::de::Deserialize::deserialize_value(__v)?)),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| {
                                format!("serde::de::Deserialize::deserialize_value(&__arr[{k}])?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{tag:?} => {{\n\
                             let __arr = __v.as_array().ok_or_else(|| \
                             serde::de::Error::expected(\"array for variant {v}\", __v))?;\n\
                             if __arr.len() != {n} {{\n\
                             return Err(serde::de::Error::expected(\
                             \"{n}-element array for variant {v}\", __v));\n}}\n\
                             Ok({name}::{v}({items}))\n}}\n",
                            v = v.name,
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{field}: {getter},\n",
                                field = f.name,
                                getter = field_getter(name, "__inner", f)
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "{tag:?} => {{\n\
                             let __inner = __v.as_object().ok_or_else(|| \
                             serde::de::Error::expected(\"object for variant {v}\", __v))?;\n\
                             Ok({name}::{v} {{\n{inits}}})\n}}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "if let Some(__s) = __value.as_str() {{\n\
                 return match __s {{\n\
                 {unit_arms}\
                 __other => Err(serde::de::Error::custom(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}};\n}}\n\
                 if let Some(__obj) = __value.as_object() {{\n\
                 if let Some((__k, __v)) = __obj.iter().next() {{\n\
                 return match __k.as_str() {{\n\
                 {tagged_arms}\
                 __other => Err(serde::de::Error::custom(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}};\n}}\n}}\n\
                 Err(serde::de::Error::expected(\"enum {name}\", __value))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl serde::de::Deserialize for {name} {{\n\
         fn deserialize_value(__value: &serde::value::Value) \
         -> Result<Self, serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}
