//! Deterministic observability for the CE-scaling reproduction.
//!
//! A [`Registry`] holds named [`Counter`]s, [`Gauge`]s, and [`Histogram`]s
//! plus a structured event sink. Two rules make the layer deterministic —
//! the property the paper's Fig. 21 overhead analysis and the repo's
//! reproducibility tests rely on:
//!
//! 1. **Sim-time only.** Events are stamped with simulation seconds passed
//!    in by the caller; the layer never reads a wall clock.
//! 2. **Stable export order.** Metrics export sorted by name (`BTreeMap`),
//!    events in append order. Same seed ⇒ byte-identical JSONL.
//!
//! Handles are cheap `Arc` clones, so instrumented components keep their
//! own handle and the registry can be snapshotted at any time. Binaries
//! use [`global()`]; components that need isolation (e.g. schedulers
//! compared side by side in tests) take an explicit registry.
//!
//! # JSONL schema
//!
//! One JSON object per line:
//!
//! ```text
//! {"type":"counter","name":"faas.cold_starts","value":12}
//! {"type":"gauge","name":"storage.s3.dollars","value":0.0875}
//! {"type":"histogram","name":"faas.queue_wait_s","count":3,"sum":1.5,"min":0.1,"max":0.9,"mean":0.5}
//! {"type":"summary","name":"serve.latency_ms","count":3,"p50":210.1,"p95":287.3,"p99":287.3}
//! {"type":"event","at_s":12.5,"name":"stage_done","stage":1,...}
//! ```
//!
//! Counter lines come first (sorted by name), then gauges, then
//! histograms, then quantile summaries (only for histograms with
//! [`Histogram::enable_quantiles`] — plain histograms export exactly the
//! bytes they always did), then events.

use serde_json::{json, Map, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Geometric bucket growth factor for quantile-tracking histograms: each
/// bucket spans a 2 % relative range, so any extracted quantile is within
/// ±1 % of the exact order statistic.
pub const BUCKET_GAMMA: f64 = 1.02;

/// Log-bucket index of a positive value: `floor(ln(v) / ln(GAMMA))`.
/// Values `<= 0` have no log bucket and are tracked separately.
pub fn log_bucket_index(v: f64) -> i32 {
    debug_assert!(v > 0.0, "log bucket of non-positive value {v}");
    (v.ln() / BUCKET_GAMMA.ln()).floor() as i32
}

/// Representative value of log bucket `i` (the geometric bucket middle).
pub fn log_bucket_value(i: i32) -> f64 {
    ((f64::from(i) + 0.5) * BUCKET_GAMMA.ln()).exp()
}

/// A monotonically increasing `u64` metric.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable / accumulable `f64` metric (stored as bits in an atomic).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Accumulates `delta` (used for running dollar/GB-s totals).
    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Running distribution summary: count / sum / min / max, plus optional
/// log-bucket tallies for quantile extraction (see
/// [`Histogram::enable_quantiles`]).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<Mutex<HistogramState>>);

/// Geometric bucket tallies: bucket `i` counts observations in
/// `[GAMMA^i, GAMMA^(i+1))`; non-positive observations land in `zeros`.
#[derive(Debug, Default, Clone)]
struct BucketTable {
    zeros: u64,
    counts: BTreeMap<i32, u64>,
}

#[derive(Debug, Default, Clone)]
struct HistogramState {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// `Some` once quantile tracking is enabled; plain histograms carry
    /// no buckets and export exactly the bytes they always did.
    buckets: Option<BucketTable>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let mut state = self.0.lock().expect("histogram lock");
        if state.count == 0 {
            state.min = value;
            state.max = value;
        } else {
            state.min = state.min.min(value);
            state.max = state.max.max(value);
        }
        state.count += 1;
        state.sum += value;
        if let Some(buckets) = state.buckets.as_mut() {
            if value > 0.0 {
                *buckets.counts.entry(log_bucket_index(value)).or_insert(0) += 1;
            } else {
                buckets.zeros += 1;
            }
        }
    }

    /// Turns on log-bucket quantile tracking (idempotent). Only
    /// observations recorded *after* this call are bucketed, so enable it
    /// right after creating the histogram. Quantile-enabled histograms
    /// additionally export a `summary` JSONL record.
    pub fn enable_quantiles(&self) {
        let mut state = self.0.lock().expect("histogram lock");
        if state.buckets.is_none() {
            state.buckets = Some(BucketTable::default());
        }
    }

    /// Whether [`Histogram::enable_quantiles`] was called.
    pub fn quantiles_enabled(&self) -> bool {
        self.0.lock().expect("histogram lock").buckets.is_some()
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by nearest-rank over the log
    /// buckets, accurate to the 2 % bucket width and clamped to the exact
    /// observed `[min, max]`. Returns `None` when empty or when quantile
    /// tracking is disabled.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let state = self.0.lock().expect("histogram lock");
        let buckets = state.buckets.as_ref()?;
        let total = buckets.zeros + buckets.counts.values().sum::<u64>();
        if total == 0 {
            return None;
        }
        // Nearest-rank: the smallest bucket whose cumulative count covers
        // rank = ceil(q * total), with rank at least 1.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        if rank == total {
            return Some(state.max);
        }
        if buckets.zeros >= rank {
            return Some(state.min.min(0.0));
        }
        let mut seen = buckets.zeros;
        for (&idx, &n) in buckets.counts.iter() {
            seen += n;
            if seen >= rank {
                return Some(log_bucket_value(idx).clamp(state.min, state.max));
            }
        }
        Some(state.max)
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th percentile (see [`Histogram::quantile`]).
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile (see [`Histogram::quantile`]).
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.lock().expect("histogram lock").count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.0.lock().expect("histogram lock").sum
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let state = self.0.lock().expect("histogram lock");
        if state.count == 0 {
            0.0
        } else {
            state.sum / state.count as f64
        }
    }
}

/// A structured event stamped with simulation time.
#[derive(Clone, Debug)]
pub struct Event {
    /// Simulation time in seconds (never wall clock).
    pub at_s: f64,
    /// Event name, e.g. `"epoch_end"`.
    pub name: String,
    /// Free-form payload fields.
    pub fields: Map,
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    events: Mutex<Vec<Event>>,
}

/// A named collection of metrics plus an event sink.
///
/// Cloning shares the underlying storage (a handle, not a copy).
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field(
                "counters",
                &self.inner.counters.lock().expect("counters lock").len(),
            )
            .field(
                "gauges",
                &self.inner.gauges.lock().expect("gauges lock").len(),
            )
            .field(
                "histograms",
                &self.inner.histograms.lock().expect("histograms lock").len(),
            )
            .field(
                "events",
                &self.inner.events.lock().expect("events lock").len(),
            )
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.inner.counters.lock().expect("counters lock");
        counters.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.inner.gauges.lock().expect("gauges lock");
        gauges.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut histograms = self.inner.histograms.lock().expect("histograms lock");
        histograms.entry(name.to_string()).or_default().clone()
    }

    /// Current value of counter `name` (0 if it was never created).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .counters
            .lock()
            .expect("counters lock")
            .get(name)
            .map(Counter::get)
            .unwrap_or(0)
    }

    /// Current value of gauge `name` (0.0 if it was never created).
    pub fn gauge_value(&self, name: &str) -> f64 {
        self.inner
            .gauges
            .lock()
            .expect("gauges lock")
            .get(name)
            .map(Gauge::get)
            .unwrap_or(0.0)
    }

    /// Records a structured event at simulation time `at_s`.
    pub fn event(&self, at_s: f64, name: &str, fields: &[(&str, Value)]) {
        let mut map = Map::new();
        for (k, v) in fields {
            map.insert((*k).to_string(), v.clone());
        }
        self.inner.events.lock().expect("events lock").push(Event {
            at_s,
            name: name.to_string(),
            fields: map,
        });
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> usize {
        self.inner.events.lock().expect("events lock").len()
    }

    /// Resets every metric and drops all events. Metric handles held by
    /// instrumented components stay valid for counters/gauges/histograms
    /// that already exist (they are zeroed, not replaced).
    pub fn reset(&self) {
        for counter in self.inner.counters.lock().expect("counters lock").values() {
            counter.0.store(0, Ordering::Relaxed);
        }
        for gauge in self.inner.gauges.lock().expect("gauges lock").values() {
            gauge.0.store(0, Ordering::Relaxed);
        }
        for histogram in self
            .inner
            .histograms
            .lock()
            .expect("histograms lock")
            .values()
        {
            let mut state = histogram.0.lock().expect("histogram lock");
            let quantiles = state.buckets.is_some();
            *state = HistogramState::default();
            if quantiles {
                state.buckets = Some(BucketTable::default());
            }
        }
        self.inner.events.lock().expect("events lock").clear();
    }

    /// One JSON object per metric/event, in deterministic order: counters,
    /// gauges, histograms (each sorted by name), then events in append
    /// order. Ends with a trailing newline when non-empty.
    pub fn export_jsonl(&self) -> String {
        let mut lines = Vec::new();
        for (name, counter) in self.inner.counters.lock().expect("counters lock").iter() {
            lines.push(
                json!({"type": "counter", "name": name.as_str(), "value": counter.get()})
                    .to_string(),
            );
        }
        for (name, gauge) in self.inner.gauges.lock().expect("gauges lock").iter() {
            lines.push(
                json!({"type": "gauge", "name": name.as_str(), "value": gauge.get()}).to_string(),
            );
        }
        let histograms = self.inner.histograms.lock().expect("histograms lock");
        for (name, histogram) in histograms.iter() {
            let state = histogram.0.lock().expect("histogram lock").clone();
            lines.push(
                json!({
                    "type": "histogram",
                    "name": name.as_str(),
                    "count": state.count,
                    "sum": state.sum,
                    "min": state.min,
                    "max": state.max,
                    "mean": if state.count == 0 { 0.0 } else { state.sum / state.count as f64 },
                })
                .to_string(),
            );
        }
        // Quantile summaries in a second pass so plain histograms keep the
        // exact byte layout they had before quantiles existed.
        for (name, histogram) in histograms.iter() {
            if !histogram.quantiles_enabled() {
                continue;
            }
            lines.push(
                json!({
                    "type": "summary",
                    "name": name.as_str(),
                    "count": histogram.count(),
                    "p50": histogram.p50().unwrap_or(0.0),
                    "p95": histogram.p95().unwrap_or(0.0),
                    "p99": histogram.p99().unwrap_or(0.0),
                })
                .to_string(),
            );
        }
        drop(histograms);
        for event in self.inner.events.lock().expect("events lock").iter() {
            let mut map = Map::new();
            map.insert("type".to_string(), Value::String("event".to_string()));
            map.insert("at_s".to_string(), json!(event.at_s));
            map.insert("name".to_string(), Value::String(event.name.clone()));
            for (k, v) in event.fields.iter() {
                map.insert(k.clone(), v.clone());
            }
            lines.push(Value::Object(map).to_string());
        }
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Folds every metric and event from `other` into this registry.
    ///
    /// Built for deterministic fan-in: parallel sweeps give each cell a
    /// private registry, then merge the cells **in input order** on the
    /// calling thread, so the combined registry is a pure function of
    /// the cell registries and the merge order — never of scheduling.
    ///
    /// Semantics per kind:
    /// * **counters** — added (exact; `u64`).
    /// * **gauges** — accumulated (`add`), matching the running-total
    ///   gauges instrumented code emits. A `set`-style gauge should be
    ///   read from its cell registry before merging; "last write wins"
    ///   across cells is not reconstructible from final values.
    /// * **histograms** — count/sum/min/max and bucket tables combined;
    ///   quantile tracking is enabled on the target if either side had
    ///   it.
    /// * **events** — appended in `other`'s order after the target's.
    pub fn merge_from(&self, other: &Registry) {
        for (name, counter) in other.inner.counters.lock().expect("counters lock").iter() {
            let v = counter.get();
            if v != 0 {
                self.counter(name).add(v);
            }
        }
        for (name, gauge) in other.inner.gauges.lock().expect("gauges lock").iter() {
            let v = gauge.get();
            if v != 0.0 {
                self.gauge(name).add(v);
            }
        }
        for (name, histogram) in other
            .inner
            .histograms
            .lock()
            .expect("histograms lock")
            .iter()
        {
            let theirs = histogram.0.lock().expect("histogram lock").clone();
            let ours = self.histogram(name);
            let mut state = ours.0.lock().expect("histogram lock");
            if theirs.count > 0 {
                if state.count == 0 {
                    state.min = theirs.min;
                    state.max = theirs.max;
                } else {
                    state.min = state.min.min(theirs.min);
                    state.max = state.max.max(theirs.max);
                }
                state.count += theirs.count;
                state.sum += theirs.sum;
            }
            if let Some(their_buckets) = theirs.buckets {
                let buckets = state.buckets.get_or_insert_with(BucketTable::default);
                buckets.zeros += their_buckets.zeros;
                for (idx, n) in their_buckets.counts {
                    *buckets.counts.entry(idx).or_insert(0) += n;
                }
            }
        }
        let their_events = other.inner.events.lock().expect("events lock").clone();
        self.inner
            .events
            .lock()
            .expect("events lock")
            .extend(their_events);
    }

    /// The metrics (no events) as one JSON object keyed by metric name.
    pub fn snapshot(&self) -> Value {
        let mut map = Map::new();
        for (name, counter) in self.inner.counters.lock().expect("counters lock").iter() {
            map.insert(name.clone(), json!(counter.get()));
        }
        for (name, gauge) in self.inner.gauges.lock().expect("gauges lock").iter() {
            map.insert(name.clone(), json!(gauge.get()));
        }
        for (name, histogram) in self
            .inner
            .histograms
            .lock()
            .expect("histograms lock")
            .iter()
        {
            let state = histogram.0.lock().expect("histogram lock").clone();
            map.insert(
                name.clone(),
                json!({"count": state.count, "sum": state.sum, "min": state.min, "max": state.max}),
            );
        }
        Value::Object(map)
    }
}

/// The process-wide registry used by the binaries' `--metrics` flag.
///
/// Library code should prefer an explicit [`Registry`] handle; the global
/// exists so experiment entry points (plain `fn(bool) -> Value`) can share
/// one sink without threading a parameter through every signature.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let registry = Registry::new();
        let c = registry.counter("x.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(registry.counter_value("x.count"), 5);
        assert_eq!(registry.counter_value("never-created"), 0);
        // Same name → same underlying metric.
        registry.counter("x.count").inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn gauges_set_and_accumulate() {
        let registry = Registry::new();
        let g = registry.gauge("dollars");
        g.set(1.5);
        g.add(0.25);
        assert!((g.get() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_tracks_summary() {
        let registry = Registry::new();
        let h = registry.histogram("wait_s");
        for v in [2.0, 1.0, 3.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 6.0).abs() < 1e-12);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn export_is_deterministic_and_sorted() {
        let build = || {
            let registry = Registry::new();
            registry.counter("b.second").add(2);
            registry.counter("a.first").add(1);
            registry.gauge("g").set(0.5);
            registry.event(1.5, "epoch_end", &[("epoch", json!(3))]);
            registry.event(2.5, "done", &[]);
            registry.export_jsonl()
        };
        let a = build();
        assert_eq!(a, build(), "same construction must be byte-identical");
        let lines: Vec<&str> = a.lines().collect();
        assert!(lines[0].contains("a.first"), "sorted by name: {a}");
        assert!(lines[1].contains("b.second"));
        assert!(lines[3].contains("epoch_end"));
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn quantiles_match_known_uniform_distribution() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        h.enable_quantiles();
        // 1..=1000: exact pXX is XX0 (nearest rank); buckets are 2 % wide,
        // so allow the documented relative error plus the bucket middle.
        for v in 1..=1000u32 {
            h.observe(f64::from(v));
        }
        for (q, exact) in [(0.50, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = h.quantile(q).expect("non-empty");
            assert!(
                (got - exact).abs() / exact < 0.02,
                "q={q}: got {got}, want ~{exact}"
            );
        }
        assert_eq!(h.quantile(1.0), Some(1000.0), "max clamp");
        assert!(h.quantile(0.0).expect("min rank") <= 1.02);
    }

    #[test]
    fn quantiles_handle_point_mass_and_zeros() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        h.enable_quantiles();
        for _ in 0..10 {
            h.observe(7.0);
        }
        // A point mass: every quantile collapses to the single value
        // (clamped to the exact min/max, so no bucket-middle error).
        assert_eq!(h.p50(), Some(7.0));
        assert_eq!(h.p99(), Some(7.0));
        for _ in 0..90 {
            h.observe(0.0);
        }
        // 90 % of mass at zero: the median is the zeros bucket.
        assert_eq!(h.p50(), Some(0.0));
    }

    #[test]
    fn quantiles_disabled_returns_none_and_keeps_export_stable() {
        let registry = Registry::new();
        let h = registry.histogram("plain");
        h.observe(1.0);
        assert_eq!(h.quantile(0.5), None);
        let export = registry.export_jsonl();
        assert!(
            !export.contains("\"summary\""),
            "plain histograms must not grow summary lines: {export}"
        );
        let q = registry.histogram("fancy");
        q.enable_quantiles();
        q.observe(2.0);
        let export = registry.export_jsonl();
        assert!(
            export.contains("\"summary\""),
            "enabled => summary: {export}"
        );
        assert!(
            export.find("\"histogram\"").unwrap() < export.find("\"summary\"").unwrap(),
            "summaries come after all histogram lines"
        );
    }

    #[test]
    fn reset_preserves_quantile_tracking() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        h.enable_quantiles();
        h.observe(5.0);
        registry.reset();
        assert_eq!(h.count(), 0);
        h.observe(3.0);
        assert!(h.p50().is_some(), "buckets survive reset");
    }

    #[test]
    fn log_bucket_round_trip_is_within_bucket_width() {
        for v in [1e-6, 0.3, 1.0, 42.0, 1.7e9] {
            let i = log_bucket_index(v);
            let mid = log_bucket_value(i);
            assert!(
                (mid / v).abs().ln().abs() <= BUCKET_GAMMA.ln(),
                "v={v}: bucket middle {mid} too far"
            );
        }
    }

    #[test]
    fn summary_record_shape_matches_module_doc() {
        // The module doc promises exactly {type,name,count,p50,p95,p99}
        // for summary lines — no p90. Round-trip the export through the
        // JSON parser and check the key set, not just a substring.
        let registry = Registry::new();
        let h = registry.histogram("serve.latency_ms");
        h.enable_quantiles();
        for v in [210.1, 250.0, 287.3] {
            h.observe(v);
        }
        let export = registry.export_jsonl();
        let summary_line = export
            .lines()
            .find(|l| l.contains(r#""type":"summary""#))
            .expect("summary line present");
        let parsed: Value = serde_json::from_str(summary_line).expect("valid JSON");
        let obj = parsed.as_object().expect("object");
        let mut keys: Vec<&str> = obj.keys().map(String::as_str).collect();
        keys.sort_unstable();
        assert_eq!(keys, ["count", "name", "p50", "p95", "p99", "type"]);
        assert_eq!(obj.get("count").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn merge_from_combines_all_metric_kinds_in_order() {
        let a = Registry::new();
        a.counter("n").add(2);
        a.gauge("dollars").add(1.5);
        let ha = a.histogram("wait");
        ha.enable_quantiles();
        ha.observe(1.0);
        ha.observe(3.0);
        a.event(1.0, "first", &[]);

        let b = Registry::new();
        b.counter("n").add(3);
        b.counter("only_b").add(1);
        b.gauge("dollars").add(0.25);
        let hb = b.histogram("wait");
        hb.enable_quantiles();
        hb.observe(2.0);
        b.event(0.5, "second", &[]);

        let target = Registry::new();
        target.merge_from(&a);
        target.merge_from(&b);
        assert_eq!(target.counter_value("n"), 5);
        assert_eq!(target.counter_value("only_b"), 1);
        assert!((target.gauge_value("dollars") - 1.75).abs() < 1e-12);
        let h = target.histogram("wait");
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 6.0).abs() < 1e-12);
        assert!(h.p50().is_some(), "bucket tables merged");
        // Events keep merge order, not timestamp order: cell order is
        // the deterministic input order.
        let export = target.export_jsonl();
        assert!(export.find("first").unwrap() < export.find("second").unwrap());

        // Merging the same cells in the same order is byte-stable.
        let target2 = Registry::new();
        target2.merge_from(&a);
        target2.merge_from(&b);
        assert_eq!(export, target2.export_jsonl());
    }

    #[test]
    fn reset_zeroes_existing_handles() {
        let registry = Registry::new();
        let c = registry.counter("n");
        c.add(7);
        registry.event(0.0, "e", &[]);
        registry.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(registry.event_count(), 0);
        c.inc();
        assert_eq!(registry.counter_value("n"), 1, "handle stays live");
    }
}
