//! The JSON value model shared by `serde` and `serde_json`.

use std::fmt;

/// A JSON number. Integers and floats are kept distinct so that integer
/// fields serialize without a trailing `.0` and round-trip exactly.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A binary64 float.
    Float(f64),
}

impl Number {
    /// Numeric value as `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// Value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    /// Value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }

    /// Whether this number is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self, Number::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    // `{:?}` is the shortest representation that round-trips,
                    // and always includes a decimal point or exponent.
                    write!(f, "{v:?}")
                } else {
                    // JSON has no NaN/Infinity; match serde_json's `null`.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON object: insertion-ordered `String -> Value` map.
///
/// Lookup is a linear scan — objects in this workspace are small (tens of
/// keys at most) and insertion order preserved in output keeps exported
/// JSONL stable and human-readable.
#[derive(Clone, Debug, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a key/value pair, replacing (and returning) any existing
    /// value under the same key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a key mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Mutable value of `key`, inserting `Value::Null` if absent.
    pub fn entry_or_null(&mut self, key: &str) -> &mut Value {
        if let Some(idx) = self.entries.iter().position(|(k, _)| k == key) {
            return &mut self.entries[idx].1;
        }
        self.entries.push((key.to_string(), Value::Null));
        &mut self.entries.last_mut().expect("just pushed").1
    }
}

// Literal comparisons (`value["method"] == "CE-scaling"`,
// `value["violated"] == true`), mirroring serde_json's `PartialEq` impls.
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<Value> for bool {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

macro_rules! impl_value_eq_float {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(f64::from(*other))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

macro_rules! impl_value_eq_uint {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_u64() == u64::try_from(*other).ok()
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == Some(i64::from(*other))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_float!(f32, f64);
impl_value_eq_uint!(u8, u16, u32, u64, usize);
impl_value_eq_int!(i8, i16, i32, i64);

impl PartialEq for Map {
    /// Order-insensitive equality (map semantics, like serde_json).
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = MapIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        MapIter {
            inner: self.entries.iter(),
        }
    }
}

/// Borrowed iterator over [`Map`] entries.
pub struct MapIter<'a> {
    inner: std::slice::Iter<'a, (String, Value)>,
}

impl<'a> Iterator for MapIter<'a> {
    type Item = (&'a String, &'a Value);
    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Boolean content, if a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric content as `f64`, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Numeric content as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric content as `i64`, if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// String content, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array content, if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable array content, if an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object content, if an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object content, if an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<String> for Value {
    type Output = Value;
    fn index(&self, key: String) -> &Value {
        &self[key.as_str()]
    }
}

impl std::ops::Index<&String> for Value {
    type Output = Value;
    fn index(&self, key: &String) -> &Value {
        &self[key.as_str()]
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Auto-vivifying object index: `Null` becomes an object, missing keys
    /// are inserted as `Null` (matching serde_json's `value[key] = ...`).
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(m) => m.entry_or_null(key),
            other => panic!("cannot index into {other:?} with a string key"),
        }
    }
}

impl std::ops::IndexMut<String> for Value {
    fn index_mut(&mut self, key: String) -> &mut Value {
        &mut self[key.as_str()]
    }
}

impl std::ops::IndexMut<&String> for Value {
    fn index_mut(&mut self, key: &String) -> &mut Value {
        &mut self[key.as_str()]
    }
}

impl fmt::Display for Value {
    /// Compact JSON, identical to `serde_json::to_string`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_compact(self, f)
    }
}

fn write_compact(value: &Value, out: &mut impl fmt::Write) -> fmt::Result {
    match value {
        Value::Null => out.write_str("null"),
        Value::Bool(true) => out.write_str("true"),
        Value::Bool(false) => out.write_str("false"),
        Value::Number(n) => write!(out, "{n}"),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.write_char('[')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_compact(item, out)?;
            }
            out.write_char(']')
        }
        Value::Object(map) => {
            out.write_char('{')?;
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_escaped(k, out)?;
                out.write_char(':')?;
                write_compact(v, out)?;
            }
            out.write_char('}')
        }
    }
}

/// Writes `s` as a JSON string literal with escapes.
pub fn write_escaped(s: &str, out: &mut impl fmt::Write) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            '\u{08}' => out.write_str("\\b")?,
            '\u{0c}' => out.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                #[allow(unused_comparisons)]
                if v < 0 {
                    Value::Number(Number::NegInt(v as i64))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
    )*};
}

impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(f64::from(v)))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}
