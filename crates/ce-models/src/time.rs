//! Epoch execution-time model (Eq. 2 and Eq. 3).
//!
//! ```text
//! t'(θ) = t^l(θ) + k · (t^g(θ) + t^p(θ))
//!       = D/(n · B_S3)  +  (D/n) · u(m)  +  k · t^p(θ)
//! ```
//!
//! with `k = instances / (n · b_z)` iterations per epoch. (The paper's
//! Eq. 2 prints the gradient term as `D/n · k · u(m)`; dimensional
//! analysis and the definition `t^g` = per-iteration gradient time over a
//! batch of `D/(n·k)` bytes show the factor `k` cancels — one epoch
//! processes each worker's shard exactly once. We implement the physically
//! consistent form.)
//!
//! The synchronization term `t^p` is Eq. 3, delegated to
//! [`ce_storage::sync::sync_time`].

use crate::allocation::Allocation;
use crate::environment::Environment;
use crate::workload::Workload;
use ce_storage::sync;
use serde::{Deserialize, Serialize};

/// The parameter-synchronization protocol.
///
/// The paper (and every headline experiment here) uses **BSP** — "every
/// function synchronizes parameters at each iteration, which has been
/// widely used in production". **ASP** is provided as an extension (Siren
/// is an asynchronous framework): workers never wait at a barrier, so the
/// critical path carries only each worker's *own* push/pull per iteration
/// instead of the Eq. 3 aggregate — but stale gradients slow convergence,
/// inflating the number of epochs needed (see [`asp_epoch_inflation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SyncProtocol {
    /// Bulk-synchronous parallel (the paper's setting).
    #[default]
    Bsp,
    /// Asynchronous parallel (the Siren-style extension).
    Asp,
}

/// Epoch-count inflation factor of ASP at `n` workers: stale updates
/// waste a fraction of each step's progress, growing with the number of
/// concurrent writers and saturating around +35 % (the shape reported
/// across the async-SGD literature: negligible at n = 1, material at
/// tens of workers).
pub fn asp_epoch_inflation(n: u32) -> f64 {
    1.0 + 0.35 * (1.0 - 1.0 / f64::from(n.max(1)))
}

/// The three components of one epoch's execution time, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Dataset load from long-term storage: `D/(n · B_S3)`.
    pub load_s: f64,
    /// Gradient computation over the worker's shard: `(D/n) · u(m)`.
    pub compute_s: f64,
    /// Parameter synchronization: `k · t^p(θ)` (Eq. 3).
    pub sync_s: f64,
}

impl TimeBreakdown {
    /// Total epoch time `t'(θ)`.
    pub fn total(&self) -> f64 {
        self.load_s + self.compute_s + self.sync_s
    }

    /// Fraction of the epoch spent communicating (the patterned bar
    /// segment of Fig. 12).
    pub fn comm_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.sync_s / total
        }
    }
}

/// The analytical epoch-time model.
#[derive(Debug, Clone)]
pub struct EpochTimeModel<'e> {
    env: &'e Environment,
}

impl<'e> EpochTimeModel<'e> {
    /// Builds the model over an environment.
    pub fn new(env: &'e Environment) -> Self {
        EpochTimeModel { env }
    }

    /// Iterations per epoch `k = ceil(instances / (n · b_z))`.
    pub fn iterations(&self, w: &Workload, alloc: &Allocation) -> u32 {
        w.dataset.iterations_per_epoch(alloc.n, w.batch)
    }

    /// Predicts one epoch's execution time under `alloc` (Eq. 2).
    ///
    /// # Panics
    /// Panics if the allocation's storage service is not in the catalog or
    /// cannot hold the model blob.
    pub fn epoch_time(&self, w: &Workload, alloc: &Allocation) -> TimeBreakdown {
        self.epoch_time_with_protocol(w, alloc, SyncProtocol::Bsp)
    }

    /// [`Self::epoch_time`] under an explicit synchronization protocol.
    ///
    /// ASP removes the barrier: the per-iteration critical path carries
    /// only the worker's own gradient push and model pull (2 transfers)
    /// regardless of `n`. The convergence cost of staleness is *not*
    /// included here — multiply the epoch count by
    /// [`asp_epoch_inflation`] when predicting a whole job.
    pub fn epoch_time_with_protocol(
        &self,
        w: &Workload,
        alloc: &Allocation,
        protocol: SyncProtocol,
    ) -> TimeBreakdown {
        let spec = self
            .env
            .storage
            .get(alloc.storage)
            .unwrap_or_else(|| panic!("storage {} not in catalog", alloc.storage));
        assert!(
            spec.supports_model(w.model.model_mb),
            "{} cannot hold a {:.1} MB model",
            alloc.storage,
            w.model.model_mb
        );
        let shard_mb = w.dataset.shard_mb(alloc.n);
        let k = self.iterations(w, alloc);
        let per_iter_sync = match protocol {
            SyncProtocol::Bsp => sync::sync_time(spec, alloc.n, w.model.model_mb),
            SyncProtocol::Asp => 2.0 * spec.transfer_time_contended(w.model.model_mb, alloc.n),
        };
        TimeBreakdown {
            load_s: shard_mb / self.env.load_bandwidth_mbps,
            compute_s: shard_mb * w.model.compute_time_per_mb(alloc.memory_mb),
            sync_s: f64::from(k) * per_iter_sync,
        }
    }

    /// Predicted JCT for `epochs` epochs (the paper's Fig. 19/20 estimate).
    pub fn training_time(&self, w: &Workload, alloc: &Allocation, epochs: u32) -> f64 {
        f64::from(epochs) * self.epoch_time(w, alloc).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_ml::{DatasetSpec, ModelSpec};
    use ce_storage::StorageKind;

    fn env() -> Environment {
        Environment::aws_default()
    }

    fn lr_higgs() -> Workload {
        Workload::new(ModelSpec::logistic_regression(), DatasetSpec::higgs())
    }

    #[test]
    fn load_time_matches_formula() {
        let env = env();
        let model = EpochTimeModel::new(&env);
        let w = lr_higgs();
        let alloc = Allocation::new(10, 1769, StorageKind::S3);
        let t = model.epoch_time(&w, &alloc);
        let expect = w.dataset.size_mb / 10.0 / env.load_bandwidth_mbps;
        assert!((t.load_s - expect).abs() < 1e-9);
    }

    #[test]
    fn compute_time_halves_with_double_workers() {
        let env = env();
        let model = EpochTimeModel::new(&env);
        let w = lr_higgs();
        let t10 = model.epoch_time(&w, &Allocation::new(10, 1769, StorageKind::S3));
        let t20 = model.epoch_time(&w, &Allocation::new(20, 1769, StorageKind::S3));
        assert!((t20.compute_s - t10.compute_s / 2.0).abs() < 1e-9);
    }

    #[test]
    fn sync_time_grows_with_workers() {
        let env = env();
        let model = EpochTimeModel::new(&env);
        let w = Workload::new(ModelSpec::mobilenet(), DatasetSpec::cifar10());
        let t10 = model.epoch_time(&w, &Allocation::new(10, 1769, StorageKind::S3));
        let t50 = model.epoch_time(&w, &Allocation::new(50, 1769, StorageKind::S3));
        // Per-iteration sync grows ~5x with 5x workers, but iteration count
        // also shrinks 5x; the per-epoch balance still favours growth in
        // transfers: (3n-2) grows faster than 1/k shrinks at fixed D.
        assert!(t50.sync_s > 0.0 && t10.sync_s > 0.0);
        // Total epoch time exhibits the compute/sync trade-off: compute
        // shrinks, sync share grows.
        assert!(t50.comm_fraction() > t10.comm_fraction());
    }

    #[test]
    fn more_memory_reduces_compute_not_sync() {
        let env = env();
        let model = EpochTimeModel::new(&env);
        let w = Workload::new(ModelSpec::mobilenet(), DatasetSpec::cifar10());
        let a = model.epoch_time(&w, &Allocation::new(10, 1769, StorageKind::S3));
        let b = model.epoch_time(&w, &Allocation::new(10, 3538, StorageKind::S3));
        assert!(b.compute_s < a.compute_s);
        assert!((b.sync_s - a.sync_s).abs() < 1e-12);
        assert!((b.load_s - a.load_s).abs() < 1e-12);
    }

    #[test]
    fn vmps_sync_beats_s3_for_large_models() {
        let env = env();
        let model = EpochTimeModel::new(&env);
        let w = Workload::new(ModelSpec::resnet50(), DatasetSpec::cifar10()).with_batch(32);
        let s3 = model.epoch_time(&w, &Allocation::new(50, 1769, StorageKind::S3));
        let vm = model.epoch_time(&w, &Allocation::new(50, 1769, StorageKind::VmPs));
        assert!(vm.sync_s < s3.sync_s);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn dynamodb_rejects_resnet() {
        let env = env();
        let model = EpochTimeModel::new(&env);
        let w = Workload::new(ModelSpec::resnet50(), DatasetSpec::cifar10());
        model.epoch_time(&w, &Allocation::new(10, 1769, StorageKind::DynamoDb));
    }

    #[test]
    fn training_time_scales_linearly_with_epochs() {
        let env = env();
        let model = EpochTimeModel::new(&env);
        let w = lr_higgs();
        let alloc = Allocation::new(10, 1769, StorageKind::S3);
        let one = model.training_time(&w, &alloc, 1);
        let ten = model.training_time(&w, &alloc, 10);
        assert!((ten - 10.0 * one).abs() < 1e-9);
    }

    #[test]
    fn iteration_count_delegates_to_dataset() {
        let env = env();
        let model = EpochTimeModel::new(&env);
        let w = lr_higgs();
        let alloc = Allocation::new(10, 1769, StorageKind::S3);
        assert_eq!(model.iterations(&w, &alloc), 110);
    }

    #[test]
    fn asp_sync_cheaper_than_bsp_at_scale() {
        let env = env();
        let model = EpochTimeModel::new(&env);
        let w = Workload::new(ModelSpec::resnet50(), DatasetSpec::cifar10()).with_batch(32);
        let alloc = Allocation::new(50, 1769, StorageKind::S3);
        let bsp = model.epoch_time_with_protocol(&w, &alloc, SyncProtocol::Bsp);
        let asp = model.epoch_time_with_protocol(&w, &alloc, SyncProtocol::Asp);
        // Same load/compute, much less critical-path sync.
        assert_eq!(bsp.load_s, asp.load_s);
        assert_eq!(bsp.compute_s, asp.compute_s);
        assert!(asp.sync_s < bsp.sync_s / 10.0);
    }

    #[test]
    fn asp_equals_bsp_semantics_at_one_worker_modulo_pattern() {
        // At n = 1 there is no barrier to remove: ASP's 2 transfers vs
        // BSP stateless' (3·1 − 2) = 1 transfer — ASP is never *better*
        // than necessary at n = 1, and inflation is zero.
        assert_eq!(asp_epoch_inflation(1), 1.0);
        assert!(asp_epoch_inflation(50) > 1.3);
        assert!(asp_epoch_inflation(50) < 1.36);
        // Monotone in n.
        assert!(asp_epoch_inflation(10) < asp_epoch_inflation(100));
    }

    #[test]
    fn asp_total_job_tradeoff_can_go_either_way() {
        // For a sync-dominated job (big model, many workers, S3) ASP wins
        // even after epoch inflation; the barrier was the bottleneck.
        let env = env();
        let model = EpochTimeModel::new(&env);
        let w = Workload::new(ModelSpec::resnet50(), DatasetSpec::cifar10()).with_batch(32);
        let alloc = Allocation::new(50, 1769, StorageKind::S3);
        let bsp_job = model.epoch_time(&w, &alloc).total() * 40.0;
        let asp_job = model
            .epoch_time_with_protocol(&w, &alloc, SyncProtocol::Asp)
            .total()
            * 40.0
            * asp_epoch_inflation(alloc.n);
        assert!(asp_job < bsp_job);
        // For a compute-dominated job (VM-PS, tiny sync share) the
        // inflation dominates and BSP wins.
        let alloc_vm = Allocation::new(10, 10240, StorageKind::VmPs);
        let bsp_job = model.epoch_time(&w, &alloc_vm).total() * 40.0;
        let asp_job = model
            .epoch_time_with_protocol(&w, &alloc_vm, SyncProtocol::Asp)
            .total()
            * 40.0
            * asp_epoch_inflation(alloc_vm.n);
        assert!(asp_job > bsp_job);
    }

    #[test]
    fn breakdown_total_is_sum() {
        let t = TimeBreakdown {
            load_s: 1.0,
            compute_s: 2.0,
            sync_s: 3.0,
        };
        assert_eq!(t.total(), 6.0);
        assert_eq!(t.comm_fraction(), 0.5);
        assert_eq!(TimeBreakdown::default().comm_fraction(), 0.0);
    }
}
